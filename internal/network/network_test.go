package network

import (
	"math"
	"testing"
	"testing/quick"

	"besst/internal/topo"
)

func testModel() *Model {
	return New(topo.NewFatTree(4, 4, 2), Params{
		InjectionOverhead: 1e-6,
		HopLatency:        100e-9,
		LinkBandwidth:     12.5e9, // ~100 Gb/s Omni-Path
		EagerLimit:        4096,
	})
}

func TestPointToPointLatencyOnly(t *testing.T) {
	m := testModel()
	// Small message below eager limit: alpha + hops*hop.
	got := m.PointToPoint(0, 1, 64)
	want := 1e-6 + 2*100e-9
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestPointToPointBandwidthTerm(t *testing.T) {
	m := testModel()
	nbytes := int64(1 << 20)
	got := m.PointToPoint(0, 5, nbytes) // cross-edge: 4 hops
	want := 1e-6 + 4*100e-9 + float64(nbytes)/12.5e9
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestPointToPointSelfIsCheap(t *testing.T) {
	m := testModel()
	self := m.PointToPoint(3, 3, 1<<20)
	remote := m.PointToPoint(3, 4, 1<<20)
	if self >= remote {
		t.Fatalf("intra-node %v should be cheaper than remote %v", self, remote)
	}
}

func TestPointToPointMonotoneInSize(t *testing.T) {
	m := testModel()
	f := func(a, b uint32) bool {
		sa, sb := int64(a), int64(b)
		if sa > sb {
			sa, sb = sb, sa
		}
		return m.PointToPoint(0, 9, sa) <= m.PointToPoint(0, 9, sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPointToPointNegativePanics(t *testing.T) {
	m := testModel()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.PointToPoint(0, 1, -1)
}

func TestCongestedSingleFlowMatchesP2P(t *testing.T) {
	m := testModel()
	f := []Flow{{Src: 0, Dst: 9, Bytes: 1 << 20}}
	got := m.Congested(f)
	want := m.PointToPoint(0, 9, 1<<20)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestCongestedSharedLinkSlowsDown(t *testing.T) {
	m := testModel()
	// Two large flows leaving the same source node share its uplink.
	shared := m.Congested([]Flow{
		{Src: 0, Dst: 8, Bytes: 1 << 24},
		{Src: 0, Dst: 12, Bytes: 1 << 24},
	})
	single := m.Congested([]Flow{{Src: 0, Dst: 8, Bytes: 1 << 24}})
	if shared < 1.9*single {
		t.Fatalf("shared %v not ~2x single %v", shared, single)
	}
}

func TestCongestedDisjointFlowsDoNotInterfere(t *testing.T) {
	m := testModel()
	// Flows within different edge switches use disjoint links.
	pair := m.Congested([]Flow{
		{Src: 0, Dst: 1, Bytes: 1 << 24},
		{Src: 4, Dst: 5, Bytes: 1 << 24},
	})
	single := m.Congested([]Flow{{Src: 0, Dst: 1, Bytes: 1 << 24}})
	if math.Abs(pair-single)/single > 1e-12 {
		t.Fatalf("disjoint flows interfered: %v vs %v", pair, single)
	}
}

func TestCongestedEmpty(t *testing.T) {
	if got := testModel().Congested(nil); got != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestBarrierScalesLog(t *testing.T) {
	m := testModel()
	if m.Barrier(1) != 0 {
		t.Fatal("1-rank barrier should be free")
	}
	b2 := m.Barrier(2)
	b16 := m.Barrier(16)
	if math.Abs(b16/b2-4) > 1e-9 { // log2(16)/log2(2) = 4
		t.Fatalf("barrier scaling %v", b16/b2)
	}
}

func TestAllreduceGrowsWithSizeAndRanks(t *testing.T) {
	m := testModel()
	small := m.Allreduce(8, 1<<13)
	big := m.Allreduce(8, 1<<20)
	if big <= small {
		t.Fatal("allreduce should grow with payload")
	}
	few := m.Allreduce(8, 1<<20)
	many := m.Allreduce(64, 1<<20)
	if many <= few {
		t.Fatal("allreduce should grow with ranks")
	}
	if m.Allreduce(1, 1<<20) != 0 {
		t.Fatal("1-rank allreduce should be free")
	}
}

func TestGatherLinearBandwidth(t *testing.T) {
	m := testModel()
	nb := int64(1 << 20)
	g8 := m.Gather(8, nb)
	g16 := m.Gather(16, nb)
	// Bandwidth term dominates at 1 MiB: should nearly double.
	if g16 < 1.8*g8/2*2-g8 { // loose check: g16 > g8
		t.Fatal("gather should grow with ranks")
	}
	if g16 <= g8 {
		t.Fatal("gather not monotone in ranks")
	}
}

func TestAllToAllQuadraticish(t *testing.T) {
	m := testModel()
	nb := int64(1 << 16)
	a4 := m.AllToAll(4, nb)
	a8 := m.AllToAll(8, nb)
	ratio := a8 / a4
	if math.Abs(ratio-7.0/3.0) > 1e-9 {
		t.Fatalf("alltoall rounds ratio %v, want 7/3", ratio)
	}
}

func TestNearestNeighbor(t *testing.T) {
	m := testModel()
	if m.NearestNeighbor(0, 1<<20) != 0 {
		t.Fatal("0 neighbors should be free")
	}
	one := m.NearestNeighbor(1, 1<<20)
	six := m.NearestNeighbor(6, 1<<20)
	if six <= one {
		t.Fatal("halo cost should grow with neighbor count")
	}
}

func TestCollectivesNonNegativeProperty(t *testing.T) {
	m := testModel()
	f := func(pRaw uint8, nRaw uint16) bool {
		p := int(pRaw%128) + 1
		n := int64(nRaw)
		return m.Barrier(p) >= 0 && m.Allreduce(p, n) >= 0 &&
			m.Broadcast(p, n) >= 0 && m.Gather(p, n) >= 0 &&
			m.AllToAll(p, n) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(topo.NewFatTree(1, 1, 1), Params{LinkBandwidth: 0})
}

func TestTorusBackedModel(t *testing.T) {
	m := New(topo.NewTorus(4, 4, 2), Params{
		InjectionOverhead: 2e-6,
		HopLatency:        50e-9,
		LinkBandwidth:     2e9,
		EagerLimit:        512,
	})
	if m.PointToPoint(0, 1, 1<<20) <= 0 {
		t.Fatal("torus p2p should be positive")
	}
	if m.Barrier(32) <= m.Barrier(2) {
		t.Fatal("torus barrier should scale")
	}
}
