// Package network provides the analytic message-cost model FT-BESST
// charges for communication: an alpha–beta (latency–bandwidth) model on
// top of a topo.Topology, with optional link-level contention, plus cost
// models for the MPI-style collectives behavioral-emulation AppBEOs use
// (barrier, allreduce, broadcast, gather, all-to-all).
//
// BE-SST is a coarse-grained simulator: it does not simulate individual
// packets. Instead each communication block asks this package "how long
// would this transfer/collective take", which is exactly how the
// original framework polls its communication performance models.
package network

import (
	"math"
	"sync"

	"besst/internal/topo"
)

// Params describes the analytic parameters of a fabric.
type Params struct {
	// InjectionOverhead (the "alpha" term) is the per-message software
	// plus NIC overhead in seconds.
	InjectionOverhead float64
	// HopLatency is the per-link traversal latency in seconds
	// (switch + wire).
	HopLatency float64
	// LinkBandwidth is the bandwidth of every link in bytes/second.
	LinkBandwidth float64
	// EagerLimit is the message size in bytes below which the
	// bandwidth term is waived (eager protocol fits in one packet).
	EagerLimit int64
}

// Validate panics on nonsensical parameters; fabrics are constructed
// from machine descriptions at startup, so errors here are config bugs.
func (p Params) Validate() {
	if p.InjectionOverhead < 0 || p.HopLatency < 0 || p.LinkBandwidth <= 0 || p.EagerLimit < 0 {
		panic("network: invalid Params")
	}
}

// Model combines a topology with fabric parameters.
type Model struct {
	Topo   topo.Topology
	Params Params

	diamOnce sync.Once
	diameter int
}

// New returns a Model after validating params.
func New(t topo.Topology, p Params) *Model {
	p.Validate()
	return &Model{Topo: t, Params: p}
}

// PointToPoint returns the time in seconds to move nbytes from node a to
// node b with no competing traffic.
func (m *Model) PointToPoint(a, b int, nbytes int64) float64 {
	if nbytes < 0 {
		panic("network: negative message size")
	}
	if a == b {
		// Intra-node transfer: memory copy, modeled as one injection
		// overhead at memory bandwidth (approximated by link bandwidth
		// times a generous factor — the simulator's coarse granularity
		// does not resolve cache behaviour).
		return m.Params.InjectionOverhead + float64(nbytes)/(8*m.Params.LinkBandwidth)
	}
	hops := float64(m.Topo.Hops(a, b))
	t := m.Params.InjectionOverhead + hops*m.Params.HopLatency
	if nbytes > m.Params.EagerLimit {
		t += float64(nbytes) / m.Params.LinkBandwidth
	}
	return t
}

// Flow describes one transfer participating in a contention set.
type Flow struct {
	Src, Dst int
	Bytes    int64
}

// Congested returns the completion time in seconds of the slowest flow
// when all flows run concurrently, under fair link sharing: each link's
// bandwidth is divided evenly among the flows routed across it, and a
// flow's effective bandwidth is that of its most contended link. This is
// the standard max-contention approximation used by coarse-grained
// interconnect models.
func (m *Model) Congested(flows []Flow) float64 {
	if len(flows) == 0 {
		return 0
	}
	load := make(map[topo.LinkID]int)
	routes := make([][]topo.LinkID, len(flows))
	for i, f := range flows {
		routes[i] = m.Topo.Route(f.Src, f.Dst)
		for _, l := range routes[i] {
			load[l]++
		}
	}
	worst := 0.0
	for i, f := range flows {
		share := 1
		for _, l := range routes[i] {
			if load[l] > share {
				share = load[l]
			}
		}
		hops := float64(len(routes[i]))
		t := m.Params.InjectionOverhead + hops*m.Params.HopLatency
		if f.Bytes > m.Params.EagerLimit {
			t += float64(f.Bytes) * float64(share) / m.Params.LinkBandwidth
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// log2ceil returns ceil(log2(p)) for p >= 1.
func log2ceil(p int) int {
	if p <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(p))))
}

// avgStage approximates the per-stage neighbor distance of a
// recursive-doubling exchange on this topology: half the diameter is a
// serviceable coarse bound. The diameter is computed once per model —
// it dominates collective-cost evaluation otherwise.
func (m *Model) avgStage() float64 {
	m.diamOnce.Do(func() { m.diameter = topo.MaxHops(m.Topo) })
	return m.Params.InjectionOverhead + float64(m.diameter)/2*m.Params.HopLatency
}

// Barrier returns the time in seconds of a dissemination barrier across
// p ranks: ceil(log2 p) zero-byte exchange stages.
func (m *Model) Barrier(p int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(log2ceil(p)) * m.avgStage()
}

// Allreduce returns the time of a recursive-doubling allreduce of nbytes
// per rank across p ranks: log2(p) stages, each moving nbytes.
func (m *Model) Allreduce(p int, nbytes int64) float64 {
	if p <= 1 {
		return 0
	}
	stages := float64(log2ceil(p))
	perStage := m.avgStage()
	if nbytes > m.Params.EagerLimit {
		perStage += float64(nbytes) / m.Params.LinkBandwidth
	}
	return stages * perStage
}

// Broadcast returns the time of a binomial-tree broadcast of nbytes from
// one root to p ranks.
func (m *Model) Broadcast(p int, nbytes int64) float64 {
	// Same stage structure as allreduce.
	return m.Allreduce(p, nbytes)
}

// Gather returns the time for p ranks to each deliver nbytes to a single
// root. The root's injection link serializes the payload, so the
// bandwidth term is linear in p; the latency term is logarithmic
// (binomial combining).
func (m *Model) Gather(p int, nbytes int64) float64 {
	if p <= 1 {
		return 0
	}
	t := float64(log2ceil(p)) * m.avgStage()
	if nbytes > m.Params.EagerLimit {
		t += float64(p-1) * float64(nbytes) / m.Params.LinkBandwidth
	}
	return t
}

// AllToAll returns the time of a complete pairwise exchange of nbytes
// between every rank pair among p ranks: p-1 rounds of pairwise
// exchanges.
func (m *Model) AllToAll(p int, nbytes int64) float64 {
	if p <= 1 {
		return 0
	}
	perRound := m.avgStage()
	if nbytes > m.Params.EagerLimit {
		perRound += float64(nbytes) / m.Params.LinkBandwidth
	}
	return float64(p-1) * perRound
}

// NearestNeighbor returns the time for a halo exchange in which each
// rank exchanges nbytes with each of k neighbors simultaneously; the
// neighbor links are assumed disjoint (the common case for stencil
// codes mapped contiguously), so the cost is that of the largest single
// exchange plus a serialization factor for injection.
func (m *Model) NearestNeighbor(k int, nbytes int64) float64 {
	if k <= 0 {
		return 0
	}
	t := m.Params.InjectionOverhead*float64(k) + m.Params.HopLatency
	if nbytes > m.Params.EagerLimit {
		// All k messages leave through the same node uplink.
		t += float64(k) * float64(nbytes) / m.Params.LinkBandwidth
	}
	return t
}
