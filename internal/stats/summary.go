package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample set.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics of xs. It panics on an empty
// slice: a summary of nothing is a caller bug, not a recoverable state.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty slice")
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MAPE returns the Mean Absolute Percentage Error, in percent, of
// predictions against measurements — the validation metric used
// throughout the paper (Tables III and IV). Entries whose measured value
// is zero are skipped; if every entry is skipped, MAPE returns NaN.
func MAPE(measured, predicted []float64) float64 {
	if len(measured) != len(predicted) {
		panic("stats: MAPE length mismatch")
	}
	var sum float64
	var n int
	for i, m := range measured {
		if ApproxEqual(m, 0, 0) {
			continue
		}
		sum += math.Abs((predicted[i] - m) / m)
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return 100 * sum / float64(n)
}

// PercentError returns the signed percent error of predicted vs measured.
func PercentError(measured, predicted float64) float64 {
	if ApproxEqual(measured, 0, 0) {
		return math.NaN()
	}
	return 100 * (predicted - measured) / measured
}

// RMSE returns the root-mean-square error between the two series.
func RMSE(measured, predicted []float64) float64 {
	if len(measured) != len(predicted) {
		panic("stats: RMSE length mismatch")
	}
	if len(measured) == 0 {
		return 0
	}
	var ss float64
	for i := range measured {
		d := predicted[i] - measured[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(measured)))
}

// R2 returns the coefficient of determination of predicted vs measured.
func R2(measured, predicted []float64) float64 {
	if len(measured) != len(predicted) {
		panic("stats: R2 length mismatch")
	}
	mean := Mean(measured)
	var ssRes, ssTot float64
	for i := range measured {
		d := measured[i] - predicted[i]
		ssRes += d * d
		t := measured[i] - mean
		ssTot += t * t
	}
	if ApproxEqual(ssTot, 0, 0) {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// Histogram bins xs into nbins equal-width bins over [min, max] and
// returns the bin counts plus the bin edges (len nbins+1). It is used to
// render the Monte-Carlo distribution pop-out of Fig 1.
func Histogram(xs []float64, nbins int) (counts []int, edges []float64) {
	if nbins <= 0 {
		panic("stats: Histogram with non-positive bin count")
	}
	s := Summarize(xs)
	lo, hi := s.Min, s.Max
	if ApproxEqual(lo, hi, 0) { // all samples identical: single populated bin
		hi = lo + 1
	}
	counts = make([]int, nbins)
	edges = make([]float64, nbins+1)
	width := (hi - lo) / float64(nbins)
	for i := range edges {
		edges[i] = lo + float64(i)*width
	}
	for _, x := range xs {
		b := int((x - lo) / width)
		if b >= nbins {
			b = nbins - 1
		}
		if b < 0 {
			b = 0
		}
		counts[b]++
	}
	return counts, edges
}

// KSDistance returns the two-sample Kolmogorov-Smirnov statistic: the
// maximum vertical distance between the empirical CDFs of a and b.
// It is used to check that Monte Carlo model draws reproduce the
// calibration-sample distributions (the paper's Fig 1 pop-out claim),
// not just their means. 0 = identical distributions, 1 = disjoint.
func KSDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSDistance with empty sample")
	}
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		// Step past every occurrence of the current smallest value in
		// BOTH samples before comparing CDFs, so ties do not create
		// spurious gaps.
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		//lint:ignore floateq KS tie-stepping must skip exactly equal sorted samples
		for i < len(sa) && sa[i] == x {
			i++
		}
		//lint:ignore floateq KS tie-stepping must skip exactly equal sorted samples
		for j < len(sb) && sb[j] == x {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}
