package stats

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, tol float64
		want      bool
	}{
		{1, 1, 0, true},                        // exact match, zero tolerance
		{1, 1 + 1e-12, 1e-9, true},             // tiny relative difference
		{1, 1.1, 1e-3, false},                  // clearly apart
		{1e9, 1e9 + 1, 1e-6, true},             // relative scaling at large magnitude
		{1e9, 1e9 + 1e5, 1e-6, false},          // beyond relative tolerance
		{0, 1e-12, 1e-9, true},                 // absolute floor near zero
		{0, 1e-6, 1e-9, false},                 // beyond absolute floor
		{math.Inf(1), math.Inf(1), 1e-9, true}, // equal infinities
		{math.Inf(1), math.Inf(-1), 1e-9, false},
		{math.NaN(), math.NaN(), 1e-9, false}, // NaN never approximately equal
		{math.NaN(), 1, 1e-9, false},
		{-2, 2, 1, false}, // sign matters: |a-b|=4 > 1*max(1,2,2)=2
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.tol); got != c.want {
			t.Errorf("ApproxEqual(%g, %g, %g) = %v, want %v", c.a, c.b, c.tol, got, c.want)
		}
	}
}

func TestApproxEqualSymmetric(t *testing.T) {
	vals := []float64{0, 1, -1, 1e-9, 1e9, math.Inf(1)}
	for _, a := range vals {
		for _, b := range vals {
			if ApproxEqual(a, b, 1e-6) != ApproxEqual(b, a, 1e-6) {
				t.Errorf("ApproxEqual not symmetric at (%g, %g)", a, b)
			}
		}
	}
}
