// Package stats provides the deterministic random-number generation,
// probability distributions, and summary statistics used throughout the
// FT-BESST simulator.
//
// All randomness in the simulator flows through stats.RNG so that every
// experiment is reproducible from a single 64-bit seed. The generator is
// xoshiro256**, seeded through splitmix64 as recommended by its authors;
// both are implemented here so the repository has no dependency on
// math/rand's global state or version-dependent stream behaviour.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator (xoshiro256**).
// The zero value is not valid; construct with NewRNG.
type RNG struct {
	s [4]uint64
	// cached second normal variate from the Box-Muller transform
	hasGauss bool
	gauss    float64
}

// splitmix64 advances the seed and returns the next splitmix64 output.
// It is used only to expand a 64-bit seed into xoshiro's 256-bit state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded deterministically from seed.
// Distinct seeds yield statistically independent streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes r in place to exactly the state NewRNG(seed)
// produces, including discarding any cached Box-Muller variate. It
// exists so pooled simulators can reuse generator allocations across
// trials while staying byte-identical to freshly constructed ones.
func (r *RNG) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state, which
	// is the one fixed point of xoshiro256**.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.hasGauss = false
	r.gauss = 0
}

// Split returns a new independent generator derived from r's stream.
// It is the supported way to hand per-component or per-replication
// streams out of a master seed without correlated sequences.
func (r *RNG) Split() *RNG {
	dst := &RNG{}
	r.SplitTo(dst)
	return dst
}

// SplitTo reseeds dst with the same derivation Split uses, advancing
// r's stream identically, but without allocating: dst ends in exactly
// the state Split's fresh generator would have.
//
//lint:hotpath
func (r *RNG) SplitTo(dst *RNG) {
	dst.Reseed(r.Uint64() ^ 0xa3cc7d5a7f2e19bf)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
//
//lint:hotpath
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
//
//lint:hotpath
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
//
//lint:hotpath
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill;
	// modulo bias is negligible for the n used in this simulator, but we
	// still reject to keep draws exactly uniform.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, via the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasGauss {
		r.hasGauss = false
		return mean + stddev*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return mean + stddev*u*f
}

// LogNormal returns a log-normally distributed value where the underlying
// normal has mean mu and standard deviation sigma (both in log space).
// Machine timing noise in the ground-truth emulator is modelled as
// multiplicative log-normal, matching the right-skewed distributions
// observed in the calibration samples BE-SST consumes.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given
// rate lambda (mean 1/lambda). Used for fault inter-arrival times.
func (r *RNG) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("stats: Exponential with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], avoiding Log(0).
	return -math.Log(1-u) / lambda
}

// Weibull returns a Weibull-distributed value with shape k and scale
// lambda. Shape k < 1 models infant-mortality failure behaviour typical
// of HPC component field data; k = 1 degenerates to the exponential.
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("stats: Weibull with non-positive parameter")
	}
	u := r.Float64()
	return scale * math.Pow(-math.Log(1-u), 1/shape)
}
