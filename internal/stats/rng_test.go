package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestNewRNGDistinctSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct seeds produced %d identical draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := NewRNG(7)
	b := a.Split()
	c := a.Split()
	if b.Uint64() == c.Uint64() {
		t.Fatal("two splits produced the same first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	for n := 1; n < 20; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := NewRNG(6)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 0.1*float64(want) {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	f := func(nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := r.Normal(10, 3)
		sum += x
		ss += x * x
	}
	mean := sum / n
	std := math.Sqrt(ss/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean %v, want ~10", mean)
	}
	if math.Abs(std-3) > 0.05 {
		t.Fatalf("normal std %v, want ~3", std)
	}
}

func TestLogNormalPositiveAndMedian(t *testing.T) {
	r := NewRNG(10)
	const n = 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(1, 0.5)
		if xs[i] <= 0 {
			t.Fatalf("lognormal produced non-positive %v", xs[i])
		}
	}
	// Median of LogNormal(mu, sigma) is exp(mu).
	med := Percentile(xs, 50)
	if math.Abs(med-math.E) > 0.05*math.E {
		t.Fatalf("lognormal median %v, want ~e", med)
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		x := r.Exponential(2)
		if x < 0 {
			t.Fatalf("negative exponential draw %v", x)
		}
		sum += x
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("exponential mean %v, want ~0.5", mean)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Exponential(0)
}

func TestWeibullShapeOneIsExponential(t *testing.T) {
	r := NewRNG(12)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Weibull(1, 2) // mean = scale * Gamma(1+1/1) = 2
	}
	mean := sum / n
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("weibull(1,2) mean %v, want ~2", mean)
	}
}

func TestWeibullPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Weibull(-1, 1)
}

func TestWeibullMeanGeneralShape(t *testing.T) {
	// Weibull(k=2, lambda=1) has mean Gamma(1.5) = sqrt(pi)/2.
	r := NewRNG(13)
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Weibull(2, 1)
	}
	mean := sum / n
	want := math.Sqrt(math.Pi) / 2
	if math.Abs(mean-want) > 0.01 {
		t.Fatalf("weibull(2,1) mean %v, want ~%v", mean, want)
	}
}
