package stats

import "math"

// ApproxEqual reports whether a and b agree to within tol, using a
// relative tolerance with an absolute floor of tol itself:
//
//	|a-b| <= tol * max(1, |a|, |b|)
//
// It is the sanctioned way to compare floating-point model outputs —
// besst-lint's floateq check forbids direct == / != on floats, because
// exact comparison silently encodes an assumption of bit-identical
// evaluation that optimization levels and refactors break. NaNs never
// compare approximately equal; equal infinities do.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //lint:ignore floateq fast path; also the only way infinities compare equal
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= tol*scale
}
