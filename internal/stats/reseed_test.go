package stats

import "testing"

// Reseed and SplitTo exist so pooled simulators can recycle RNG
// allocations across trials; their whole contract is stream equality
// with the allocating constructors, which these tests pin bit for bit.

func TestReseedMatchesNewRNG(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0xdeadbeef} {
		fresh := NewRNG(seed)
		var reused RNG
		reused.Reseed(^seed) // dirty the state first
		_ = reused.Uint64()
		reused.Reseed(seed)
		for i := 0; i < 256; i++ {
			if a, b := fresh.Uint64(), reused.Uint64(); a != b {
				t.Fatalf("seed %d: stream diverged at draw %d: %d vs %d", seed, i, a, b)
			}
		}
	}
}

func TestSplitToMatchesSplit(t *testing.T) {
	p1 := NewRNG(7)
	p2 := NewRNG(7)
	c1 := p1.Split()
	var c2 RNG
	p2.SplitTo(&c2)
	for i := 0; i < 256; i++ {
		if a, b := c1.Uint64(), c2.Uint64(); a != b {
			t.Fatalf("child streams diverged at draw %d: %d vs %d", i, a, b)
		}
		// Parents must also advance identically.
		if a, b := p1.Uint64(), p2.Uint64(); a != b {
			t.Fatalf("parent streams diverged at draw %d: %d vs %d", i, a, b)
		}
	}
}

func TestReseedDiscardsCachedGaussian(t *testing.T) {
	r := NewRNG(9)
	r.Normal(0, 1) // odd draw count leaves a cached Box-Muller variate
	r.Reseed(9)
	fresh := NewRNG(9)
	for i := 0; i < 16; i++ {
		a, b := r.Normal(0, 1), fresh.Normal(0, 1)
		// Bit-exact equality is the contract: same seed, same stream.
		//lint:ignore floateq stream-equality test requires exact comparison
		if a != b {
			t.Fatalf("normal stream diverged at draw %d: %v vs %v (cached variate leaked through Reseed)", i, a, b)
		}
	}
}
