package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	want := math.Sqrt(2.5)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, want)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Fatalf("unexpected summary %+v", s)
	}
}

func TestSummarizePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{9, 1, 5, 3, 7}
	if Percentile(xs, 0) != 1 {
		t.Fatal("p0 should be min")
	}
	if Percentile(xs, 100) != 9 {
		t.Fatal("p100 should be max")
	}
	if Percentile(xs, 50) != 5 {
		t.Fatal("p50 should be median")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 25); got != 2.5 {
		t.Fatalf("p25 = %v, want 2.5", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw % 101)
		v := Percentile(xs, p)
		s := Summarize(xs)
		return v >= s.Min && v <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMAPEPerfectPrediction(t *testing.T) {
	m := []float64{1, 2, 3}
	if got := MAPE(m, m); got != 0 {
		t.Fatalf("MAPE of perfect prediction = %v", got)
	}
}

func TestMAPEKnownValue(t *testing.T) {
	m := []float64{100, 200}
	p := []float64{110, 180}
	// |10/100| and |20/200| -> both 10% -> MAPE 10%.
	if got := MAPE(m, p); math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAPE = %v, want 10", got)
	}
}

func TestMAPESkipsZeroMeasured(t *testing.T) {
	m := []float64{0, 100}
	p := []float64{5, 120}
	if got := MAPE(m, p); math.Abs(got-20) > 1e-12 {
		t.Fatalf("MAPE = %v, want 20", got)
	}
}

func TestMAPEAllZerosIsNaN(t *testing.T) {
	if got := MAPE([]float64{0}, []float64{1}); !math.IsNaN(got) {
		t.Fatalf("want NaN, got %v", got)
	}
}

func TestMAPEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MAPE([]float64{1}, []float64{1, 2})
}

func TestMAPENonNegativeProperty(t *testing.T) {
	f := func(pairs []struct{ M, P float64 }) bool {
		m := make([]float64, 0, len(pairs))
		p := make([]float64, 0, len(pairs))
		for _, pr := range pairs {
			if math.IsNaN(pr.M) || math.IsNaN(pr.P) || math.IsInf(pr.M, 0) || math.IsInf(pr.P, 0) {
				continue
			}
			m = append(m, pr.M)
			p = append(p, pr.P)
		}
		got := MAPE(m, p)
		return math.IsNaN(got) || got >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentError(t *testing.T) {
	if got := PercentError(100, 120); got != 20 {
		t.Fatalf("got %v", got)
	}
	if got := PercentError(100, 80); got != -20 {
		t.Fatalf("got %v", got)
	}
	if !math.IsNaN(PercentError(0, 1)) {
		t.Fatal("want NaN for zero measured")
	}
}

func TestRMSE(t *testing.T) {
	m := []float64{0, 0}
	p := []float64{3, 4}
	want := math.Sqrt((9.0 + 16.0) / 2)
	if got := RMSE(m, p); math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %v, want %v", got, want)
	}
}

func TestR2Perfect(t *testing.T) {
	m := []float64{1, 2, 3}
	if got := R2(m, m); got != 1 {
		t.Fatalf("R2 = %v, want 1", got)
	}
}

func TestR2MeanPredictorIsZero(t *testing.T) {
	m := []float64{1, 2, 3}
	p := []float64{2, 2, 2}
	if got := R2(m, p); math.Abs(got) > 1e-12 {
		t.Fatalf("R2 = %v, want 0", got)
	}
}

func TestHistogramCounts(t *testing.T) {
	xs := []float64{0, 0.1, 0.9, 1}
	counts, edges := Histogram(xs, 2)
	if len(counts) != 2 || len(edges) != 3 {
		t.Fatalf("bad shapes: %v %v", counts, edges)
	}
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v, want [2 2]", counts)
	}
	if edges[0] != 0 || edges[2] != 1 {
		t.Fatalf("edges = %v", edges)
	}
}

func TestHistogramAllIdentical(t *testing.T) {
	counts, _ := Histogram([]float64{5, 5, 5}, 4)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 3 {
		t.Fatalf("histogram lost samples: %v", counts)
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64, nb uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		nbins := int(nb%10) + 1
		counts, edges := Histogram(xs, nbins)
		if len(edges) != nbins+1 {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
}

func TestKSDistanceIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := KSDistance(xs, xs); got != 0 {
		t.Fatalf("identical samples KS = %v", got)
	}
}

func TestKSDistanceDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 20, 30}
	if got := KSDistance(a, b); got != 1 {
		t.Fatalf("disjoint samples KS = %v, want 1", got)
	}
}

func TestKSDistanceSameDistribution(t *testing.T) {
	rng := NewRNG(14)
	a := make([]float64, 3000)
	b := make([]float64, 3000)
	for i := range a {
		a[i] = rng.Normal(5, 1)
		b[i] = rng.Normal(5, 1)
	}
	if got := KSDistance(a, b); got > 0.06 {
		t.Fatalf("same-distribution KS = %v too large", got)
	}
}

func TestKSDistanceShiftedDistribution(t *testing.T) {
	rng := NewRNG(15)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = rng.Normal(5, 1)
		b[i] = rng.Normal(7, 1)
	}
	if got := KSDistance(a, b); got < 0.5 {
		t.Fatalf("shifted-distribution KS = %v too small", got)
	}
}

func TestKSDistanceSymmetricProperty(t *testing.T) {
	f := func(ar, br []float64) bool {
		a := make([]float64, 0, len(ar))
		for _, x := range ar {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				a = append(a, x)
			}
		}
		b := make([]float64, 0, len(br))
		for _, x := range br {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				b = append(b, x)
			}
		}
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		d1 := KSDistance(a, b)
		d2 := KSDistance(b, a)
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKSDistancePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KSDistance(nil, []float64{1})
}
