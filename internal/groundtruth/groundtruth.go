// Package groundtruth is the synthetic "real machine" of this
// reproduction. The paper benchmarks LULESH and FTI on LLNL's Quartz
// and feeds the timing samples into the BE-SST Model Development phase;
// we have no Quartz, so this package emulates one: first-principles
// cost functions over the machine description (compute rate, disk, PFS,
// network, FTI protocol costs) with multiplicative log-normal noise and
// mild structural effects (cache-capacity and bandwidth-degradation
// kinks) that a fitted model cannot capture exactly — so model
// validation produces honest, non-zero MAPE values like the paper's.
//
// Everything downstream treats this package as the measured side:
// benchmarking campaigns sample it, and full-system validation runs it
// event by event.
package groundtruth

import (
	"math"

	"besst/internal/fti"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/network"
	"besst/internal/stats"
)

// Emulator produces "measured" timings for one machine.
type Emulator struct {
	M    *machine.Machine
	Cost *fti.CostModel
	net  *network.Model // cached cost model (topology diameter is expensive)

	// TimestepSigma and CkptSigma are the log-normal noise levels of
	// compute blocks and checkpoint instances. Checkpointing is far
	// noisier in practice (storage and interconnect interference),
	// which is why the paper's checkpoint models carry ~2.5x the
	// timestep model error.
	TimestepSigma float64
	CkptSigma     float64
	CommSigma     float64

	// FlopsPerElement is the per-element, per-timestep work of the
	// LULESH kernel bundle.
	FlopsPerElement float64
	// JitterPerLog2Ranks is the fractional compute slowdown per
	// doubling of ranks (OS noise and imbalance amplification at
	// scale) — the source of the timestep function's slight rank
	// scaling in Fig 6.
	JitterPerLog2Ranks float64
	// CmtFlopsPerElement is the per-element CMT-bone cost.
	CmtFlopsPerElement float64
}

// NewQuartz returns the emulator standing in for the paper's Quartz
// measurements, with the case study's FTI configuration (group size 4,
// node size 2).
func NewQuartz() *Emulator {
	m := machine.Quartz()
	return &Emulator{
		M:                  m,
		Cost:               fti.NewCostModel(m, fti.Config{GroupSize: 4, NodeSize: 2}),
		net:                m.Network(),
		TimestepSigma:      0.05,
		CkptSigma:          0.12,
		CommSigma:          0.10,
		FlopsPerElement:    3500,
		JitterPerLog2Ranks: 0.015,
		CmtFlopsPerElement: 2.2e6,
	}
}

// NewVulcan returns the emulator standing in for the Fig 1 Vulcan
// measurements.
func NewVulcan() *Emulator {
	m := machine.Vulcan()
	return &Emulator{
		M:                  m,
		Cost:               fti.NewCostModel(m, fti.Config{GroupSize: 4, NodeSize: 2}),
		net:                m.Network(),
		TimestepSigma:      0.06,
		CkptSigma:          0.12,
		CommSigma:          0.10,
		FlopsPerElement:    3500,
		JitterPerLog2Ranks: 0.012,
		CmtFlopsPerElement: 2.2e6,
	}
}

func log2(x float64) float64 { return math.Log2(x) }

// LuleshTimestepMean returns the noise-free mean runtime in seconds of
// one LULESH timestep function (the instrumented block: element kernels
// plus intra-step halo exchange) for a problem size and rank count.
func (e *Emulator) LuleshTimestepMean(epr, ranks int) float64 {
	elems := float64(lulesh.Elements(epr))
	compute := elems * e.FlopsPerElement / (e.M.CoreGFLOPS * 1e9)
	// Cache-capacity kink: once the working set spills further out of
	// cache the per-element cost rises. A structural effect the
	// symbolic models only approximate — part of the honest model
	// error budget.
	if epr >= 20 {
		compute *= 1.12
	} else if epr >= 15 {
		compute *= 1.05
	}
	// Scale jitter: stragglers amplify with parallelism.
	if ranks > 1 {
		compute *= 1 + e.JitterPerLog2Ranks*log2(float64(ranks))
	}
	halo := e.net.NearestNeighbor(6, lulesh.HaloBytes(epr))
	return compute + halo
}

// MeasureLuleshTimestep draws one noisy "benchmark run" of the timestep
// function.
func (e *Emulator) MeasureLuleshTimestep(epr, ranks int, rng *stats.RNG) float64 {
	return e.LuleshTimestepMean(epr, ranks) * rng.LogNormal(0, e.TimestepSigma)
}

// ABFTOverheadFactor is the direct compute overhead of the checksummed
// (algorithm-based fault-tolerant) timestep variant.
const ABFTOverheadFactor = 1.18

// LuleshTimestepABFTMean returns the mean runtime of the ABFT timestep
// variant: the baseline kernels plus checksum maintenance (a
// proportional compute term plus a surface-proportional verification
// pass). Unlike checkpointing, the overhead is rank-independent — the
// trade the algorithmic-DSE extension explores.
func (e *Emulator) LuleshTimestepABFTMean(epr, ranks int) float64 {
	base := e.LuleshTimestepMean(epr, ranks)
	surface := float64(epr) * float64(epr) * 6 * 40 / (e.M.CoreGFLOPS * 1e9)
	return base*ABFTOverheadFactor + surface
}

// MeasureLuleshTimestepABFT draws one noisy ABFT timestep measurement.
func (e *Emulator) MeasureLuleshTimestepABFT(epr, ranks int, rng *stats.RNG) float64 {
	return e.LuleshTimestepABFTMean(epr, ranks) * rng.LogNormal(0, e.TimestepSigma)
}

// ckptStructural is the bandwidth-degradation kink of local storage:
// node-level checkpoint files past the write-cache capacity stream
// slower. Again deliberately outside the fitted models' vocabulary.
func (e *Emulator) ckptStructural(level fti.Level, epr int) float64 {
	nodeBytes := lulesh.CheckpointBytes(epr) * int64(e.Cost.Config.NodeSize)
	switch {
	case nodeBytes > 6<<20:
		return 1.10
	case nodeBytes > 2<<20:
		return 1.04
	default:
		return 1.0
	}
}

// CkptMean returns the noise-free mean runtime of one checkpoint
// instance at the given level for LULESH state of the given problem
// size across `ranks` ranks.
func (e *Emulator) CkptMean(level fti.Level, epr, ranks int) float64 {
	base := e.Cost.InstanceTime(level, ranks, lulesh.CheckpointBytes(epr))
	return base * e.ckptStructural(level, epr)
}

// MeasureCkpt draws one noisy checkpoint-instance measurement.
func (e *Emulator) MeasureCkpt(level fti.Level, epr, ranks int, rng *stats.RNG) float64 {
	return e.CkptMean(level, epr, ranks) * rng.LogNormal(0, e.CkptSigma)
}

// AllreduceMean returns the mean cost of LULESH's per-step dt
// allreduce.
func (e *Emulator) AllreduceMean(ranks int) float64 {
	return e.net.Allreduce(ranks, 8)
}

// MeasureAllreduce draws one noisy allreduce measurement.
func (e *Emulator) MeasureAllreduce(ranks int, rng *stats.RNG) float64 {
	return e.AllreduceMean(ranks) * rng.LogNormal(0, e.CommSigma)
}

// MaxRankDraws caps how many per-rank noise draws FullRun and the
// simulator's direct mode evaluate per timestep; beyond this many ranks
// the per-step maximum is taken over a representative subsample.
const MaxRankDraws = 65536

// StepMax returns one "machine step time": the maximum of `ranks`
// independent noisy draws around mean (each rank's compute time varies;
// the step completes when the slowest rank arrives at the allreduce).
// The same semantics are used by the BE-SST simulator so that model
// error, not synchronization-semantics mismatch, dominates validation
// error.
func StepMax(mean, sigma float64, ranks int, rng *stats.RNG) float64 {
	n := ranks
	if n > MaxRankDraws {
		n = MaxRankDraws
	}
	if n < 1 {
		n = 1
	}
	worst := 0.0
	for i := 0; i < n; i++ {
		if v := rng.LogNormal(0, sigma); v > worst {
			worst = v
		}
	}
	return mean * worst
}

// FullRun executes a complete LULESH+FTI run "on the machine",
// timestep by timestep — the measured side of the paper's Figs 7-8
// full-system validation. Compute blocks take the per-step maximum over
// per-rank noise draws (the step ends when the slowest rank reaches the
// allreduce); checkpoint instances take one coordinated, instance-level
// draw. It returns the cumulative runtime after each timestep.
func (e *Emulator) FullRun(epr, ranks, timesteps int, sc lulesh.Scenario, rng *stats.RNG) []float64 {
	return e.FullRunInto(nil, epr, ranks, timesteps, sc, rng)
}

// FullRunInto is FullRun writing into a caller-provided buffer, resized
// (and allocated only when too small) to `timesteps` — the
// allocation-free path for replicated validation campaigns that run
// many full runs back to back.
func (e *Emulator) FullRunInto(cum []float64, epr, ranks, timesteps int, sc lulesh.Scenario, rng *stats.RNG) []float64 {
	if cap(cum) < timesteps {
		cum = make([]float64, timesteps)
	}
	cum = cum[:timesteps]
	total := 0.0
	tsMean := e.LuleshTimestepMean(epr, ranks)
	for step := 0; step < timesteps; step++ {
		total += StepMax(tsMean, e.TimestepSigma, ranks, rng)
		total += e.MeasureAllreduce(ranks, rng)
		for _, s := range sc.Schedules {
			if step%s.Period == s.Period-1 {
				total += e.MeasureCkpt(s.Level, epr, ranks, rng)
			}
		}
		cum[step] = total
	}
	return cum
}

// CGIterationMean returns the mean cost of one miniCG iteration for a
// local grid size n and rank count: a memory-bound 27-point SpMV plus
// vector updates. CG is bandwidth-limited, so the per-row cost is set
// by sustained memory bandwidth (approximated from the compute rate),
// with the same scale-jitter amplification as other kernels.
func (e *Emulator) CGIterationMean(n, ranks int) float64 {
	rows := float64(minicgRows(n))
	// 27 nonzeros x 16 bytes (value+index) + 5 vector touches x 8B.
	bytesPerRow := 27.0*16 + 5*8
	memBW := e.M.CoreGFLOPS * 1e9 / 2 // bytes/s, DRAM-bound estimate
	iter := rows * bytesPerRow / memBW
	if ranks > 1 {
		iter *= 1 + e.JitterPerLog2Ranks*log2(float64(ranks))
	}
	halo := e.net.NearestNeighbor(6, int64(n)*int64(n)*8)
	return iter + halo
}

func minicgRows(n int) int64 {
	if n <= 0 {
		panic("groundtruth: non-positive CG problem size")
	}
	v := int64(n)
	return v * v * v
}

// MeasureCGIteration draws one noisy miniCG iteration measurement.
func (e *Emulator) MeasureCGIteration(n, ranks int, rng *stats.RNG) float64 {
	return e.CGIterationMean(n, ranks) * rng.LogNormal(0, e.TimestepSigma)
}

// CmtTimestepMean returns the mean CMT-bone timestep cost for a
// problem size (elements per rank) and rank count.
func (e *Emulator) CmtTimestepMean(psize, ranks int) float64 {
	elems := float64(cmtElements(psize))
	compute := elems * e.CmtFlopsPerElement / (e.M.CoreGFLOPS * 1e9)
	if ranks > 1 {
		compute *= 1 + e.JitterPerLog2Ranks*log2(float64(ranks))
	}
	face := e.net.NearestNeighbor(6, 5*5*5*8)
	all := e.net.Allreduce(ranks, 8)
	return compute + face + all
}

func cmtElements(psize int) int64 {
	if psize <= 0 {
		panic("groundtruth: non-positive CMT-bone problem size")
	}
	return int64(psize)
}

// MeasureCmtTimestep draws one noisy CMT-bone timestep measurement.
func (e *Emulator) MeasureCmtTimestep(psize, ranks int, rng *stats.RNG) float64 {
	return e.CmtTimestepMean(psize, ranks) * rng.LogNormal(0, e.TimestepSigma)
}

// CmtFullRun measures a complete CMT-bone run of the given length, with
// the same per-step slowest-rank semantics as FullRun. It returns the
// total runtime — the measured side of Fig 1's benchmark points.
func (e *Emulator) CmtFullRun(psize, ranks, timesteps int, rng *stats.RNG) float64 {
	mean := e.CmtTimestepMean(psize, ranks)
	total := 0.0
	for step := 0; step < timesteps; step++ {
		total += StepMax(mean, e.TimestepSigma, ranks, rng)
	}
	return total
}
