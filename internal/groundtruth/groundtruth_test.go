package groundtruth

import (
	"testing"

	"besst/internal/fti"
	"besst/internal/lulesh"
	"besst/internal/stats"
)

func TestTimestepMeanScalesWithEPR(t *testing.T) {
	e := NewQuartz()
	prev := 0.0
	for _, epr := range []int{5, 10, 15, 20, 25} {
		v := e.LuleshTimestepMean(epr, 64)
		if v <= prev {
			t.Fatalf("timestep mean not increasing at epr %d", epr)
		}
		prev = v
	}
	// Roughly cubic: 25 vs 5 should be ~>100x.
	r := e.LuleshTimestepMean(25, 64) / e.LuleshTimestepMean(5, 64)
	if r < 50 {
		t.Fatalf("epr scaling ratio %v too weak", r)
	}
}

func TestTimestepMeanScalesSlightlyWithRanks(t *testing.T) {
	e := NewQuartz()
	small := e.LuleshTimestepMean(15, 8)
	big := e.LuleshTimestepMean(15, 1000)
	if big <= small {
		t.Fatal("timestep should scale slightly with ranks")
	}
	// "Slightly": well under 2x across the whole rank range.
	if big/small > 1.5 {
		t.Fatalf("timestep rank scaling %v too strong", big/small)
	}
}

func TestCkptMeanAboveTimestep(t *testing.T) {
	// Paper Figs 5-6: checkpoint instances cost more than a timestep
	// across the studied grid.
	e := NewQuartz()
	for _, epr := range []int{5, 10, 15, 20, 25} {
		for _, ranks := range []int{8, 64, 216, 512, 1000} {
			ts := e.LuleshTimestepMean(epr, ranks)
			c1 := e.CkptMean(fti.L1, epr, ranks)
			c2 := e.CkptMean(fti.L2, epr, ranks)
			if c1 <= ts {
				t.Fatalf("L1 ckpt %v <= timestep %v at epr=%d ranks=%d", c1, ts, epr, ranks)
			}
			if c2 <= c1 {
				t.Fatalf("L2 ckpt %v <= L1 %v at epr=%d ranks=%d", c2, c1, epr, ranks)
			}
		}
	}
}

func TestCkptScalesFasterWithRanksThanTimestep(t *testing.T) {
	e := NewQuartz()
	tsRatio := e.LuleshTimestepMean(15, 1000) / e.LuleshTimestepMean(15, 8)
	ckRatio := e.CkptMean(fti.L1, 15, 1000) / e.CkptMean(fti.L1, 15, 8)
	if ckRatio <= tsRatio {
		t.Fatalf("checkpoint rank scaling %v should exceed timestep's %v", ckRatio, tsRatio)
	}
}

func TestMeasureNoisyButUnbiased(t *testing.T) {
	e := NewQuartz()
	rng := stats.NewRNG(1)
	mean := e.LuleshTimestepMean(15, 64)
	var sum float64
	const n = 5000
	different := false
	first := e.MeasureLuleshTimestep(15, 64, rng)
	for i := 0; i < n; i++ {
		v := e.MeasureLuleshTimestep(15, 64, rng)
		if v != first {
			different = true
		}
		sum += v
	}
	if !different {
		t.Fatal("measurements carry no noise")
	}
	got := sum / n
	if got < 0.97*mean || got > 1.05*mean {
		t.Fatalf("measured mean %v deviates from %v", got, mean)
	}
}

func TestCkptNoisierThanTimestep(t *testing.T) {
	e := NewQuartz()
	if e.CkptSigma <= e.TimestepSigma {
		t.Fatal("checkpoint noise should exceed timestep noise")
	}
}

func TestFullRunCumulativeMonotone(t *testing.T) {
	e := NewQuartz()
	rng := stats.NewRNG(2)
	cum := e.FullRun(10, 64, 200, lulesh.ScenarioL1, rng)
	if len(cum) != 200 {
		t.Fatalf("len = %d", len(cum))
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] <= cum[i-1] {
			t.Fatalf("cumulative time not increasing at step %d", i)
		}
	}
}

// TestFullRunIntoReusesBuffer: the buffered variant must reproduce
// FullRun exactly and reuse a caller buffer of sufficient capacity
// instead of allocating.
func TestFullRunIntoReusesBuffer(t *testing.T) {
	e := NewQuartz()
	want := e.FullRun(10, 64, 50, lulesh.ScenarioL1, stats.NewRNG(9))

	buf := make([]float64, 0, 200)
	got := e.FullRunInto(buf, 10, 64, 50, lulesh.ScenarioL1, stats.NewRNG(9))
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("step %d: %v != %v", i, got[i], want[i])
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("FullRunInto did not reuse the provided buffer")
	}
	// Too-small buffers grow transparently.
	if short := e.FullRunInto(make([]float64, 0, 4), 10, 64, 50, lulesh.ScenarioL1, stats.NewRNG(9)); len(short) != 50 {
		t.Fatalf("grown buffer len = %d", len(short))
	}
}

func TestFullRunScenarioOrdering(t *testing.T) {
	// Total runtime: No FT < L1 < L1&L2 (Figs 7-8).
	e := NewQuartz()
	total := func(sc lulesh.Scenario) float64 {
		rng := stats.NewRNG(3)
		cum := e.FullRun(15, 64, 200, sc, rng)
		return cum[len(cum)-1]
	}
	noFT := total(lulesh.ScenarioNoFT)
	l1 := total(lulesh.ScenarioL1)
	l12 := total(lulesh.ScenarioL1L2)
	if !(noFT < l1 && l1 < l12) {
		t.Fatalf("scenario ordering violated: %v %v %v", noFT, l1, l12)
	}
}

func TestFullRunCheckpointStepsVisible(t *testing.T) {
	// Steps containing a checkpoint must be notably longer.
	e := NewQuartz()
	rng := stats.NewRNG(4)
	cum := e.FullRun(10, 64, 80, lulesh.ScenarioL1, rng)
	stepTime := func(i int) float64 {
		if i == 0 {
			return cum[0]
		}
		return cum[i] - cum[i-1]
	}
	ckptStep := stepTime(39) // period 40, offset 39
	plainStep := stepTime(20)
	if ckptStep < 3*plainStep {
		t.Fatalf("checkpoint step %v not clearly longer than plain %v", ckptStep, plainStep)
	}
}

func TestCmtTimestep(t *testing.T) {
	e := NewVulcan()
	small := e.CmtTimestepMean(16, 128)
	big := e.CmtTimestepMean(64, 128)
	if big <= small {
		t.Fatal("CMT-bone cost should grow with problem size")
	}
	rng := stats.NewRNG(5)
	if e.MeasureCmtTimestep(16, 128, rng) <= 0 {
		t.Fatal("measurement should be positive")
	}
}

func TestQuartzVulcanDistinct(t *testing.T) {
	q, v := NewQuartz(), NewVulcan()
	if q.M.Name == v.M.Name {
		t.Fatal("emulators should describe different machines")
	}
	// Same workload costs differ across machines.
	if q.LuleshTimestepMean(15, 64) == v.LuleshTimestepMean(15, 64) {
		t.Fatal("machines should have different performance")
	}
}

func TestABFTTimestepOverhead(t *testing.T) {
	e := NewQuartz()
	for _, epr := range []int{5, 15, 25} {
		for _, ranks := range []int{8, 1000} {
			base := e.LuleshTimestepMean(epr, ranks)
			abft := e.LuleshTimestepABFTMean(epr, ranks)
			if abft <= base {
				t.Fatalf("ABFT should cost more than baseline at epr=%d ranks=%d", epr, ranks)
			}
			// Overhead is bounded: well under 2x for these sizes.
			if abft > 2*base {
				t.Fatalf("ABFT overhead implausible: %v vs %v", abft, base)
			}
		}
	}
	// The ABFT overhead *ratio* shrinks with problem size (the fixed
	// verification term amortizes), unlike checkpoint cost.
	r5 := e.LuleshTimestepABFTMean(5, 64) / e.LuleshTimestepMean(5, 64)
	r25 := e.LuleshTimestepABFTMean(25, 64) / e.LuleshTimestepMean(25, 64)
	if r25 >= r5 {
		t.Fatalf("ABFT relative overhead should shrink with epr: %v -> %v", r5, r25)
	}
	rng := stats.NewRNG(1)
	if e.MeasureLuleshTimestepABFT(10, 64, rng) <= 0 {
		t.Fatal("measurement should be positive")
	}
}

func TestCGIterationProfile(t *testing.T) {
	e := NewQuartz()
	// Cost grows cubically with the local grid size.
	small := e.CGIterationMean(8, 64)
	big := e.CGIterationMean(16, 64)
	if big < 6*small {
		t.Fatalf("CG iteration scaling too weak: %v -> %v", small, big)
	}
	rng := stats.NewRNG(6)
	if e.MeasureCGIteration(8, 64, rng) <= 0 {
		t.Fatal("measurement should be positive")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<=0")
		}
	}()
	e.CGIterationMean(0, 8)
}
