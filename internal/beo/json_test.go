package beo

import (
	"encoding/json"
	"testing"

	"besst/internal/fti"
	"besst/internal/perfmodel"
)

func TestAppBEOJSONRoundTrip(t *testing.T) {
	app := sampleApp()
	data, err := json.Marshal(app)
	if err != nil {
		t.Fatal(err)
	}
	var back AppBEO
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != app.Name || back.Ranks != app.Ranks {
		t.Fatalf("metadata lost: %+v", back)
	}
	if back.CountInstr() != app.CountInstr() {
		t.Fatalf("dynamic instruction count %d != %d", back.CountInstr(), app.CountInstr())
	}
	ops := back.Ops()
	for op := range app.Ops() {
		if !ops[op] {
			t.Fatalf("op %q lost in round trip", op)
		}
	}
	// Structural spot checks.
	loop, ok := back.Program[1].(Loop)
	if !ok || loop.Count != 10 {
		t.Fatalf("loop structure lost: %+v", back.Program)
	}
	per, ok := loop.Body[2].(Periodic)
	if !ok || per.Period != 4 {
		t.Fatalf("periodic lost: %+v", loop.Body)
	}
	ck, ok := per.Body[0].(Ckpt)
	if !ok || ck.Level != fti.L1 || ck.Params.Get("epr") != 15 {
		t.Fatalf("ckpt lost: %+v", per.Body)
	}
}

func TestAppBEOJSONFromHandwrittenSpec(t *testing.T) {
	spec := `{
	  "name": "custom", "ranks": 27,
	  "program": [
	    {"kind": "loop", "count": 5, "body": [
	      {"kind": "comp", "op": "kernel", "params": {"n": 32}},
	      {"kind": "comm", "pattern": "halo", "bytes": 4096, "neighbors": 6},
	      {"kind": "comm", "pattern": "allreduce", "bytes": 8},
	      {"kind": "periodic", "period": 2, "offset": 1, "body": [
	        {"kind": "ckpt", "op": "ck", "level": 2, "params": {"n": 32}}
	      ]}
	    ]}
	  ]
	}`
	var app AppBEO
	if err := json.Unmarshal([]byte(spec), &app); err != nil {
		t.Fatal(err)
	}
	if app.Ranks != 27 {
		t.Fatal("ranks wrong")
	}
	// 5*(comp+halo+allreduce) + ckpt at iterations 1, 3.
	if got := app.CountInstr(); got != 17 {
		t.Fatalf("count = %d, want 17", got)
	}
}

func TestAppBEOJSONRejectsBadSpecs(t *testing.T) {
	cases := []string{
		`{"name":"x","ranks":0,"program":[]}`,
		`{"name":"x","ranks":8,"program":[{"kind":"alien"}]}`,
		`{"name":"x","ranks":8,"program":[{"kind":"comp"}]}`,
		`{"name":"x","ranks":8,"program":[{"kind":"comm","pattern":"warp"}]}`,
		`{"name":"x","ranks":8,"program":[{"kind":"ckpt","op":"c","level":9}]}`,
		`{"name":"x","ranks":8,"program":[{"kind":"loop","count":0,"body":[]}]}`,
		`{"name":"x","ranks":8,"program":[{"kind":"periodic","period":0,"body":[]}]}`,
		`{"name":"x","ranks":8,"program":[{"kind":"comm","pattern":"halo","bytes":-4}]}`,
	}
	for i, c := range cases {
		var app AppBEO
		if err := json.Unmarshal([]byte(c), &app); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestAppBEOJSONParamsSurvive(t *testing.T) {
	app := &AppBEO{Name: "p", Ranks: 1, Program: []Instr{
		Comp{Op: "k", Params: perfmodel.Params{"a": 1.5, "b": -2}},
	}}
	data, _ := json.Marshal(app)
	var back AppBEO
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	c := back.Program[0].(Comp)
	if c.Params.Get("a") != 1.5 || c.Params.Get("b") != -2 {
		t.Fatalf("params lost: %v", c.Params)
	}
}
