package beo

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzAppBEOJSON drives arbitrary bytes through the AppBEO decoder —
// the path a hand-written or truncated -app spec takes into besst-sim.
// Properties: the decoder never panics, and any accepted spec
// re-marshals to a fixed point (marshal → unmarshal → marshal is
// stable), so corrupted files either error out cleanly or normalize.
func FuzzAppBEOJSON(f *testing.F) {
	f.Add([]byte(`{"name":"solver","ranks":64,"program":[
		{"kind":"loop","count":200,"body":[
			{"kind":"comp","op":"timestep","params":{"epr":10,"ranks":64}},
			{"kind":"comm","pattern":"allreduce","bytes":8},
			{"kind":"periodic","period":40,"offset":39,"body":[
				{"kind":"ckpt","op":"fti_ckpt_l1","level":1,"params":{"epr":10}}]}]}]}`))
	f.Add([]byte(`{"name":"x","ranks":8,"program":[{"kind":"comm","pattern":"halo","bytes":4,"neighbors":6}]}`))
	f.Add([]byte(`{"name":"x","ranks":8,"program":[{"kind":"comp"}]}`))
	f.Add([]byte(`{"name":"x","ranks":0}`))
	f.Add([]byte(`{"name":"x","ranks":8,"program":[{"kind":"loop","count":2,"body":null}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		var app AppBEO
		if err := json.Unmarshal(data, &app); err != nil {
			return
		}
		if app.Ranks <= 0 {
			t.Fatalf("decoder accepted non-positive ranks %d", app.Ranks)
		}
		first, err := json.Marshal(&app)
		if err != nil {
			t.Fatalf("accepted app does not re-marshal: %v", err)
		}
		var back AppBEO
		if err := json.Unmarshal(first, &back); err != nil {
			t.Fatalf("re-marshaled app does not decode: %v\n%s", err, first)
		}
		second, err := json.Marshal(&back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("marshal not a fixed point:\n%s\n%s", first, second)
		}
	})
}
