// Package beo defines Behavioral Emulation Objects, the modeling
// currency of the BE-SST workflow (Fig 2 of the paper):
//
//   - An AppBEO is "a list of abstract instructions that represents the
//     major functions and control flow of the application under study".
//   - An ArchBEO "describes the system hardware architecture that is
//     simulated, defines system operations, and connects the
//     performance models to the instructions listed in the AppBEO".
//
// The FT-aware extension adds checkpoint instructions to the AppBEO
// instruction set and fault-tolerance parameters (fault rates, recovery
// times, FTI configuration) to the ArchBEO — the red boxes of Fig 2.
package beo

import (
	"fmt"

	"besst/internal/fti"
	"besst/internal/machine"
	"besst/internal/perfmodel"
)

// Instr is one abstract instruction of an AppBEO.
type Instr interface{ isInstr() }

// Comp is a computation block: when executed, the simulator polls the
// ArchBEO model bound to Op with the given parameters and advances the
// rank's clock by the predicted time.
type Comp struct {
	Op     string
	Params perfmodel.Params
}

func (Comp) isInstr() {}

// CommPattern enumerates the communication shapes AppBEOs use.
type CommPattern int

// Supported communication patterns.
const (
	Barrier CommPattern = iota
	Allreduce
	Broadcast
	Gather
	AllToAll
	Halo // nearest-neighbor exchange with Neighbors peers
)

func (p CommPattern) String() string {
	switch p {
	case Barrier:
		return "barrier"
	case Allreduce:
		return "allreduce"
	case Broadcast:
		return "broadcast"
	case Gather:
		return "gather"
	case AllToAll:
		return "alltoall"
	case Halo:
		return "halo"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Comm is a communication block: a collective (or halo exchange) across
// all ranks moving Bytes per rank. The simulator synchronizes the
// participating ranks and charges the ArchBEO's network cost model.
type Comm struct {
	Pattern   CommPattern
	Bytes     int64
	Neighbors int // Halo only: peers per rank
}

func (Comm) isInstr() {}

// Ckpt is a checkpoint instruction — the FT-aware instruction the paper
// adds to the AppBEO instruction set (Fig 3's "FTI_Checkpoint" block).
// Like Comp it polls the model bound to Op; Level records which FTI
// level the block performs so scenarios can include or exclude it and
// full-system plots can mark checkpoint instances.
type Ckpt struct {
	Op     string
	Level  fti.Level
	Params perfmodel.Params
}

func (Ckpt) isInstr() {}

// Loop repeats Body Count times. The iteration index is visible to
// nested Periodic instructions.
type Loop struct {
	Count int
	Body  []Instr
}

func (Loop) isInstr() {}

// Periodic executes Body only on enclosing-loop iterations i with
// i % Period == Offset — how "checkpoint every 40 timesteps" is
// expressed (Figs 7-8).
type Periodic struct {
	Period int
	Offset int
	Body   []Instr
}

func (Periodic) isInstr() {}

// AppBEO is an application model: the abstract program each rank
// executes.
type AppBEO struct {
	Name    string
	Ranks   int
	Program []Instr
}

// Ops returns the set of model names the program polls, for binding
// validation.
func (a *AppBEO) Ops() map[string]bool {
	ops := map[string]bool{}
	var walk func([]Instr)
	walk = func(is []Instr) {
		for _, in := range is {
			switch v := in.(type) {
			case Comp:
				ops[v.Op] = true
			case Ckpt:
				ops[v.Op] = true
			case Loop:
				walk(v.Body)
			case Periodic:
				walk(v.Body)
			}
		}
	}
	walk(a.Program)
	return ops
}

// CountInstr returns the number of dynamic instructions one rank
// executes (loops expanded, periodics counted on firing iterations).
func (a *AppBEO) CountInstr() int {
	var count func(is []Instr, reps int) int
	count = func(is []Instr, reps int) int {
		total := 0
		for _, in := range is {
			switch v := in.(type) {
			case Loop:
				// Periodic children need per-iteration counting.
				for i := 0; i < v.Count; i++ {
					total += countIter(v.Body, i)
				}
			case Periodic:
				panic("beo: Periodic outside Loop")
			default:
				total += reps
			}
		}
		return total
	}
	return count(a.Program, 1)
}

func countIter(is []Instr, iter int) int {
	total := 0
	for _, in := range is {
		switch v := in.(type) {
		case Loop:
			for i := 0; i < v.Count; i++ {
				total += countIter(v.Body, i)
			}
		case Periodic:
			if v.Period > 0 && iter%v.Period == v.Offset%v.Period {
				total += countIter(v.Body, iter)
			}
		default:
			total++
		}
	}
	return total
}

// FTParams carries the fault-tolerance-aware hardware parameters the
// extension adds to ArchBEOs (Fig 2, label "C"): component fault rates
// and recovery behaviour, plus the FTI configuration in effect.
type FTParams struct {
	// FTI is the checkpoint-library configuration (group size, node
	// size).
	FTI fti.Config
	// NodeFaultsPerHour is the per-node failure rate; the machine
	// MTBF is the default source.
	NodeFaultsPerHour float64
	// HardFailureFraction is the fraction of faults that destroy
	// node-local storage (vs. soft process crashes).
	HardFailureFraction float64
}

// ArchBEO binds performance models to the operations an AppBEO uses,
// over a concrete machine.
type ArchBEO struct {
	Machine      *machine.Machine
	RanksPerNode int
	Models       map[string]perfmodel.Model
	FT           FTParams
}

// NewArchBEO returns an ArchBEO with an empty model table and FT
// parameters defaulted from the machine description.
func NewArchBEO(m *machine.Machine, ranksPerNode int) *ArchBEO {
	if ranksPerNode <= 0 {
		panic("beo: non-positive ranks per node")
	}
	ft := FTParams{HardFailureFraction: 0.5}
	if m.NodeMTBFHours > 0 {
		ft.NodeFaultsPerHour = 1 / m.NodeMTBFHours
	}
	return &ArchBEO{
		Machine:      m,
		RanksPerNode: ranksPerNode,
		Models:       map[string]perfmodel.Model{},
		FT:           ft,
	}
}

// Bind attaches a model to an operation name, replacing any previous
// binding — the plug-and-play DSE move (swap one kernel's model for an
// alternative algorithm's model).
func (a *ArchBEO) Bind(op string, m perfmodel.Model) {
	if m == nil {
		panic("beo: nil model")
	}
	a.Models[op] = m
}

// ModelFor returns the model bound to op, panicking on a missing
// binding: executing an unbound instruction is a workflow bug.
func (a *ArchBEO) ModelFor(op string) perfmodel.Model {
	m, ok := a.Models[op]
	if !ok {
		panic(fmt.Sprintf("beo: no model bound for op %q", op))
	}
	return m
}

// Validate checks that every operation app polls has a bound model and
// that the machine can host the ranks.
func (a *ArchBEO) Validate(app *AppBEO) error {
	for op := range app.Ops() {
		if _, ok := a.Models[op]; !ok {
			return fmt.Errorf("beo: app %q polls op %q with no bound model", app.Name, op)
		}
	}
	nodes := (app.Ranks + a.RanksPerNode - 1) / a.RanksPerNode
	if nodes > a.Machine.Nodes {
		return fmt.Errorf("beo: app %q needs %d nodes but %s has %d",
			app.Name, nodes, a.Machine.Name, a.Machine.Nodes)
	}
	return nil
}
