package beo

import (
	"encoding/json"
	"fmt"

	"besst/internal/fti"
	"besst/internal/perfmodel"
)

// JSON serialization of AppBEOs, so downstream users can define
// application models declaratively and run them with besst-sim instead
// of writing Go builders. The schema is a direct rendering of the
// instruction set:
//
//	{"name": "solver", "ranks": 64, "program": [
//	  {"kind": "loop", "count": 200, "body": [
//	    {"kind": "comp", "op": "timestep", "params": {"epr": 10, "ranks": 64}},
//	    {"kind": "comm", "pattern": "allreduce", "bytes": 8},
//	    {"kind": "periodic", "period": 40, "offset": 39, "body": [
//	      {"kind": "ckpt", "op": "fti_ckpt_l1", "level": 1,
//	       "params": {"epr": 10, "ranks": 64}}]}]}]}

type jsonInstr struct {
	Kind      string             `json:"kind"`
	Op        string             `json:"op,omitempty"`
	Params    map[string]float64 `json:"params,omitempty"`
	Pattern   string             `json:"pattern,omitempty"`
	Bytes     int64              `json:"bytes,omitempty"`
	Neighbors int                `json:"neighbors,omitempty"`
	Level     int                `json:"level,omitempty"`
	Count     int                `json:"count,omitempty"`
	Period    int                `json:"period,omitempty"`
	Offset    int                `json:"offset,omitempty"`
	Body      []jsonInstr        `json:"body,omitempty"`
}

type jsonApp struct {
	Name    string      `json:"name"`
	Ranks   int         `json:"ranks"`
	Program []jsonInstr `json:"program"`
}

var patternNames = map[CommPattern]string{
	Barrier: "barrier", Allreduce: "allreduce", Broadcast: "broadcast",
	Gather: "gather", AllToAll: "alltoall", Halo: "halo",
}

var patternByName = func() map[string]CommPattern {
	m := make(map[string]CommPattern, len(patternNames))
	for p, n := range patternNames {
		m[n] = p
	}
	return m
}()

func toJSONInstr(in Instr) jsonInstr {
	switch v := in.(type) {
	case Comp:
		return jsonInstr{Kind: "comp", Op: v.Op, Params: v.Params}
	case Comm:
		return jsonInstr{
			Kind: "comm", Pattern: patternNames[v.Pattern],
			Bytes: v.Bytes, Neighbors: v.Neighbors,
		}
	case Ckpt:
		return jsonInstr{Kind: "ckpt", Op: v.Op, Level: int(v.Level), Params: v.Params}
	case Loop:
		return jsonInstr{Kind: "loop", Count: v.Count, Body: toJSONInstrs(v.Body)}
	case Periodic:
		return jsonInstr{
			Kind: "periodic", Period: v.Period, Offset: v.Offset,
			Body: toJSONInstrs(v.Body),
		}
	default:
		panic(fmt.Sprintf("beo: cannot serialize instruction %T", in))
	}
}

func toJSONInstrs(is []Instr) []jsonInstr {
	out := make([]jsonInstr, len(is))
	for i, in := range is {
		out[i] = toJSONInstr(in)
	}
	return out
}

func fromJSONInstr(j jsonInstr) (Instr, error) {
	switch j.Kind {
	case "comp":
		if j.Op == "" {
			return nil, fmt.Errorf("beo: comp without op")
		}
		return Comp{Op: j.Op, Params: perfmodel.Params(j.Params)}, nil
	case "comm":
		p, ok := patternByName[j.Pattern]
		if !ok {
			return nil, fmt.Errorf("beo: unknown comm pattern %q", j.Pattern)
		}
		if j.Bytes < 0 {
			return nil, fmt.Errorf("beo: negative comm bytes")
		}
		return Comm{Pattern: p, Bytes: j.Bytes, Neighbors: j.Neighbors}, nil
	case "ckpt":
		lvl := fti.Level(j.Level)
		if !lvl.Valid() {
			return nil, fmt.Errorf("beo: invalid checkpoint level %d", j.Level)
		}
		if j.Op == "" {
			return nil, fmt.Errorf("beo: ckpt without op")
		}
		return Ckpt{Op: j.Op, Level: lvl, Params: perfmodel.Params(j.Params)}, nil
	case "loop":
		if j.Count <= 0 {
			return nil, fmt.Errorf("beo: loop count %d", j.Count)
		}
		body, err := fromJSONInstrs(j.Body)
		if err != nil {
			return nil, err
		}
		return Loop{Count: j.Count, Body: body}, nil
	case "periodic":
		if j.Period <= 0 {
			return nil, fmt.Errorf("beo: periodic period %d", j.Period)
		}
		body, err := fromJSONInstrs(j.Body)
		if err != nil {
			return nil, err
		}
		return Periodic{Period: j.Period, Offset: j.Offset, Body: body}, nil
	default:
		return nil, fmt.Errorf("beo: unknown instruction kind %q", j.Kind)
	}
}

func fromJSONInstrs(js []jsonInstr) ([]Instr, error) {
	out := make([]Instr, len(js))
	for i, j := range js {
		in, err := fromJSONInstr(j)
		if err != nil {
			return nil, err
		}
		out[i] = in
	}
	return out, nil
}

// MarshalJSON implements json.Marshaler.
func (a *AppBEO) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonApp{
		Name:    a.Name,
		Ranks:   a.Ranks,
		Program: toJSONInstrs(a.Program),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *AppBEO) UnmarshalJSON(data []byte) error {
	var j jsonApp
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if j.Ranks <= 0 {
		return fmt.Errorf("beo: app %q has non-positive ranks", j.Name)
	}
	prog, err := fromJSONInstrs(j.Program)
	if err != nil {
		return fmt.Errorf("beo: app %q: %w", j.Name, err)
	}
	*a = AppBEO{Name: j.Name, Ranks: j.Ranks, Program: prog}
	return nil
}
