package beo

import (
	"strings"
	"testing"

	"besst/internal/fti"
	"besst/internal/machine"
	"besst/internal/perfmodel"
)

func sampleApp() *AppBEO {
	return &AppBEO{
		Name:  "solver",
		Ranks: 64,
		Program: []Instr{
			Comp{Op: "init", Params: perfmodel.Params{"ranks": 64}},
			Loop{Count: 10, Body: []Instr{
				Comp{Op: "timestep", Params: perfmodel.Params{"epr": 15}},
				Comm{Pattern: Allreduce, Bytes: 8},
				Periodic{Period: 4, Body: []Instr{
					Ckpt{Op: "ckpt_l1", Level: fti.L1, Params: perfmodel.Params{"epr": 15}},
				}},
			}},
		},
	}
}

func TestOpsCollection(t *testing.T) {
	ops := sampleApp().Ops()
	for _, want := range []string{"init", "timestep", "ckpt_l1"} {
		if !ops[want] {
			t.Fatalf("missing op %q in %v", want, ops)
		}
	}
	if len(ops) != 3 {
		t.Fatalf("ops = %v", ops)
	}
}

func TestCountInstr(t *testing.T) {
	app := sampleApp()
	// init(1) + 10*(timestep+allreduce) + ckpt on iters 0,4,8 (3x).
	want := 1 + 20 + 3
	if got := app.CountInstr(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

func TestCountInstrNestedLoop(t *testing.T) {
	app := &AppBEO{Ranks: 1, Program: []Instr{
		Loop{Count: 3, Body: []Instr{
			Loop{Count: 2, Body: []Instr{Comp{Op: "a"}}},
		}},
	}}
	if got := app.CountInstr(); got != 6 {
		t.Fatalf("count = %d, want 6", got)
	}
}

func TestCountInstrPeriodicOffset(t *testing.T) {
	app := &AppBEO{Ranks: 1, Program: []Instr{
		Loop{Count: 10, Body: []Instr{
			Periodic{Period: 3, Offset: 1, Body: []Instr{Comp{Op: "c"}}},
		}},
	}}
	// Fires at iterations 1, 4, 7.
	if got := app.CountInstr(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
}

func TestPeriodicOutsideLoopPanics(t *testing.T) {
	app := &AppBEO{Ranks: 1, Program: []Instr{
		Periodic{Period: 2, Body: []Instr{Comp{Op: "x"}}},
	}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	app.CountInstr()
}

func TestCommPatternStrings(t *testing.T) {
	for p := Barrier; p <= Halo; p++ {
		if s := p.String(); s == "" || strings.HasPrefix(s, "pattern(") {
			t.Fatalf("bad string for %d: %q", p, s)
		}
	}
}

func TestArchBEOBindAndValidate(t *testing.T) {
	arch := NewArchBEO(machine.Quartz(), 2)
	app := sampleApp()
	if err := arch.Validate(app); err == nil {
		t.Fatal("validate should fail with no models bound")
	}
	for _, op := range []string{"init", "timestep", "ckpt_l1"} {
		arch.Bind(op, perfmodel.Constant{Label: op, Seconds: 1})
	}
	if err := arch.Validate(app); err != nil {
		t.Fatalf("validate failed: %v", err)
	}
	if arch.ModelFor("timestep").Name() != "timestep" {
		t.Fatal("ModelFor wrong")
	}
}

func TestArchBEOTooManyRanks(t *testing.T) {
	arch := NewArchBEO(machine.Quartz(), 1)
	app := &AppBEO{Name: "huge", Ranks: 10000, Program: []Instr{Comp{Op: "a"}}}
	arch.Bind("a", perfmodel.Constant{Seconds: 1})
	if err := arch.Validate(app); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestArchBEOFTDefaults(t *testing.T) {
	m := machine.Quartz()
	arch := NewArchBEO(m, 2)
	if arch.FT.NodeFaultsPerHour <= 0 {
		t.Fatal("fault rate should default from MTBF")
	}
	want := 1 / m.NodeMTBFHours
	if arch.FT.NodeFaultsPerHour != want {
		t.Fatalf("rate = %v, want %v", arch.FT.NodeFaultsPerHour, want)
	}
}

func TestModelForMissingPanics(t *testing.T) {
	arch := NewArchBEO(machine.Quartz(), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	arch.ModelFor("ghost")
}

func TestBindNilPanics(t *testing.T) {
	arch := NewArchBEO(machine.Quartz(), 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	arch.Bind("x", nil)
}

func TestNewArchBEOBadRanksPerNode(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArchBEO(machine.Quartz(), 0)
}
