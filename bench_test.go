// Package bench is the benchmark harness regenerating every table and
// figure of the paper (one testing.B benchmark per experiment) plus the
// ablation benches DESIGN.md calls out. Each benchmark reports the
// experiment's headline metrics via b.ReportMetric — MAPE values next
// to the paper's published numbers, overhead percentages, speedups —
// so `go test -bench=.` reproduces the evaluation in one run.
//
// Experiments use reduced Monte Carlo counts to keep the harness fast;
// cmd/besst-exp runs them at full fidelity.
package bench

import (
	"runtime"
	"sync"
	"testing"

	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/des"
	"besst/internal/dse"
	"besst/internal/erasure"
	"besst/internal/exp"
	"besst/internal/fti"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/netsim"
	"besst/internal/network"
	"besst/internal/obs"
	"besst/internal/stats"
	"besst/internal/topo"
	"besst/internal/workflow"
)

var (
	ctxOnce sync.Once
	ctx     *exp.Context
)

// sharedCtx develops the case-study models once for all benchmarks.
func sharedCtx(b *testing.B) *exp.Context {
	b.Helper()
	ctxOnce.Do(func() {
		ctx = exp.NewContext(8, 42)
	})
	return ctx
}

// BenchmarkTable1FTILevels regenerates Table I (level semantics) — the
// measured work is the per-level recoverability evaluation across
// representative failure sets, including the L3 Reed-Solomon group
// threshold.
func BenchmarkTable1FTILevels(b *testing.B) {
	cfg := groundtruth.NewQuartz().Cost.Config
	sets := [][]fti.Failure{
		{{Node: 0, Kind: fti.SoftFailure}},
		{{Node: 0, Kind: fti.HardFailure}},
		{{Node: 0, Kind: fti.HardFailure}, {Node: 1, Kind: fti.HardFailure}},
		{{Node: 0, Kind: fti.HardFailure}, {Node: 1, Kind: fti.HardFailure}, {Node: 2, Kind: fti.HardFailure}},
	}
	recoverable := 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recoverable = 0
		for l := fti.L1; l <= fti.L4; l++ {
			for _, fs := range sets {
				if cfg.Recoverable(l, fs) {
					recoverable++
				}
			}
		}
	}
	b.ReportMetric(float64(recoverable), "recoverable-cases")
}

// BenchmarkTable3InstanceMAPE regenerates Table III: instance-model
// validation MAPE per kernel.
func BenchmarkTable3InstanceMAPE(b *testing.B) {
	c := sharedCtx(b)
	var rows []exp.Table3Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = exp.Table3(c)
	}
	b.ReportMetric(rows[0].MAPE, "timestepMAPE%")
	b.ReportMetric(rows[1].MAPE, "ckptL1MAPE%")
	b.ReportMetric(rows[2].MAPE, "ckptL2MAPE%")
	b.ReportMetric(rows[0].PaperMAPE, "paper-timestepMAPE%")
}

// BenchmarkTable4SystemMAPE regenerates Table IV: full-system MAPE for
// the three fault-tolerance scenarios over the Table II grid.
func BenchmarkTable4SystemMAPE(b *testing.B) {
	c := sharedCtx(b)
	var rows []exp.Table4Row
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = exp.Table4(c, 60, 2)
	}
	b.ReportMetric(rows[0].MAPE, "noftMAPE%")
	b.ReportMetric(rows[1].MAPE, "l1MAPE%")
	b.ReportMetric(rows[2].MAPE, "l1l2MAPE%")
}

// BenchmarkFig1Vulcan regenerates Fig 1: CMT-bone on Vulcan, validation
// to 131072 ranks and prediction to 1M ranks.
func BenchmarkFig1Vulcan(b *testing.B) {
	var r *exp.Fig1Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r = exp.Fig1(5, 3, 7)
	}
	b.ReportMetric(r.TimestepModelMAPE, "modelMAPE%")
	b.ReportMetric(float64(len(r.Points)), "points")
}

// BenchmarkFig5ModelsVsEPR regenerates Fig 5: model validation against
// problem size with the epr-30 prediction region.
func BenchmarkFig5ModelsVsEPR(b *testing.B) {
	c := sharedCtx(b)
	var pts []exp.ValidationPoint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = exp.Fig5(c)
	}
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkFig6ModelsVsRanks regenerates Fig 6: model validation
// against rank count with the 1331-rank prediction region.
func BenchmarkFig6ModelsVsRanks(b *testing.B) {
	c := sharedCtx(b)
	var pts []exp.ValidationPoint
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts = exp.Fig6(c)
	}
	b.ReportMetric(float64(len(pts)), "points")
}

// BenchmarkFig7FullRun64 regenerates Fig 7: 200-timestep full runs at
// 64 ranks in DES mode for the three scenarios.
func BenchmarkFig7FullRun64(b *testing.B) {
	c := sharedCtx(b)
	var series []exp.FullRunSeries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series = exp.FigFullRun(c, 10, 64, 200, 2, besst.DES)
	}
	b.ReportMetric(series[0].MAPE, "noftMAPE%")
	b.ReportMetric(series[1].MAPE, "l1MAPE%")
	b.ReportMetric(series[2].MAPE, "l1l2MAPE%")
}

// BenchmarkFig8FullRun1000 regenerates Fig 8: the same at 1000 ranks
// (direct mode keeps the harness fast; cmd/besst-exp uses DES).
func BenchmarkFig8FullRun1000(b *testing.B) {
	c := sharedCtx(b)
	var series []exp.FullRunSeries
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series = exp.FigFullRun(c, 10, 1000, 200, 2, besst.Direct)
	}
	b.ReportMetric(series[0].MAPE, "noftMAPE%")
	b.ReportMetric(series[2].MAPE, "l1l2MAPE%")
}

// BenchmarkFig9Overhead regenerates Fig 9: the overhead-prediction
// tables at 64 and 1000 ranks.
func BenchmarkFig9Overhead(b *testing.B) {
	c := sharedCtx(b)
	var cells []dse.Cell
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells = exp.Fig9(c, 60, 2)
	}
	var worst float64
	for _, cell := range cells {
		if cell.OverheadPct > worst {
			worst = cell.OverheadPct
		}
	}
	b.ReportMetric(worst, "worstOverhead%")
}

// BenchmarkExtFaultInjection regenerates the fault-injection extension
// (Fig 4 Cases 1-4).
func BenchmarkExtFaultInjection(b *testing.B) {
	c := sharedCtx(b)
	var rows []exp.FaultCase
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = exp.FaultStudy(c, 25, 64, 600000, 5, 5)
	}
	b.ReportMetric(rows[1].MeanWall/rows[0].MeanWall, "case2-slowdown")
	b.ReportMetric(rows[3].MeanWall/rows[0].MeanWall, "case4-slowdown")
}

// BenchmarkExtAnalyticBaselines regenerates the analytic-baseline
// comparison from the related-work section.
func BenchmarkExtAnalyticBaselines(b *testing.B) {
	c := sharedCtx(b)
	var rows []exp.AnalyticRow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = exp.AnalyticStudy(c, 1e-5, []int{64, 4096, 262144, 1 << 20})
	}
	b.ReportMetric(rows[len(rows)-1].Cavelan, "cavelan@1M")
	b.ReportMetric(rows[len(rows)-1].HussainRepl, "hussain@1M")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationModelingMethod compares the two Model Development
// methods on the same campaign: interpolation tables vs symbolic
// regression (fit cost here; accuracy reported as metrics).
func BenchmarkAblationModelingMethod(b *testing.B) {
	em := groundtruth.NewQuartz()
	campaign := benchdata.CollectLulesh(em, benchdata.CaseStudyPlan(6, 1))
	b.Run("interpolation", func(b *testing.B) {
		b.ReportAllocs()
		var m *workflow.Models
		for i := 0; i < b.N; i++ {
			m = workflow.Develop(campaign, workflow.Interpolation, []string{"epr", "ranks"}, 2)
		}
		b.ReportMetric(m.Report(lulesh.OpTimestep).ValidationMAPE, "timestepMAPE%")
	})
	b.Run("symreg", func(b *testing.B) {
		b.ReportAllocs()
		var m *workflow.Models
		for i := 0; i < b.N; i++ {
			m = workflow.Develop(campaign, workflow.SymbolicRegression, []string{"epr", "ranks"}, 2)
		}
		b.ReportMetric(m.Report(lulesh.OpTimestep).ValidationMAPE, "timestepMAPE%")
	})
}

// BenchmarkAblationDESvsDirect compares the two execution modes on an
// identical deterministic workload (they produce identical makespans;
// the ablation is the cost of event-level fidelity).
func BenchmarkAblationDESvsDirect(b *testing.B) {
	c := sharedCtx(b)
	cfg := c.Quartz.Cost.Config
	app := lulesh.App(10, 64, 200, lulesh.ScenarioL1, cfg)
	arch := beo.NewArchBEO(c.Quartz.M, cfg.NodeSize)
	workflow.BindLulesh(arch, c.Models)
	for _, mode := range []struct {
		name string
		m    besst.Mode
	}{{"des", besst.DES}, {"direct", besst.Direct}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var r *besst.Result
			for i := 0; i < b.N; i++ {
				r = besst.Run(app, arch, besst.WithMode(mode.m))
			}
			b.ReportMetric(r.Makespan, "makespan-s")
		})
	}
}

// BenchmarkAblationParallelDES measures the conservative parallel
// engine against the sequential engine on a workload it can exploit:
// independent communication rings, one cluster per partition, whose
// events carry non-trivial handler work (standing in for BE model
// polls). With near-zero per-event work the window barriers dominate
// and sequential wins — the classic conservative-parallel trade-off.
func BenchmarkAblationParallelDES(b *testing.B) {
	const rings, ringNodes, hops = 8, 8, 2000
	run := func(parts int) {
		register := func(c des.Component) des.ComponentID { panic("unset") }
		var connect func(des.ComponentID, string, des.ComponentID, string, des.Time)
		var schedule func(des.Time, des.ComponentID, des.Payload)
		var runAll func()
		if parts == 1 {
			e := des.NewEngine()
			register, connect, schedule = e.Register, e.Connect, e.ScheduleAt
			runAll = func() { e.Run(0) }
		} else {
			e := des.NewParallelEngine(parts, 100)
			count := 0
			register = func(c des.Component) des.ComponentID {
				id := e.RegisterIn((count/ringNodes)%parts, c)
				count++
				return id
			}
			connect, schedule = e.Connect, e.ScheduleAt
			runAll = func() { e.Run(0) }
		}
		var first []des.ComponentID
		for g := 0; g < rings; g++ {
			ids := make([]des.ComponentID, ringNodes)
			for i := range ids {
				ids[i] = register(ringHop{})
			}
			for i := range ids {
				connect(ids[i], "next", ids[(i+1)%ringNodes], "next", 100)
			}
			first = append(first, ids[0])
		}
		for _, id := range first {
			schedule(0, id, des.Payload{A: hops})
		}
		runAll()
	}
	for _, parts := range []int{1, 2, 4} {
		name := map[int]string{1: "sequential", 2: "parallel-2", 4: "parallel-4"}[parts]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				run(parts)
			}
		})
	}
}

type ringHop struct{}

func (ringHop) HandleEvent(ctx *des.Context, ev des.Event) {
	if n := ev.Payload.A; n > 0 {
		// Synthetic handler work standing in for a model poll.
		acc := uint64(n)
		for i := 0; i < 2000; i++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
		if acc == 0 {
			panic("unreachable")
		}
		ctx.Send("next", 0, des.Payload{A: n - 1})
	}
}

// BenchmarkDESDispatch measures the raw DES event hot path — schedule,
// queue, dispatch — with a near-empty handler, so the number is the
// engine's per-event overhead rather than model-poll cost. One op is
// one delivered event. "sequential" drives the sequential engine;
// "parallel-2" drives two independent rings pinned to two partitions of
// the parallel engine (intra-partition dispatch, wide lookahead), the
// per-partition steady-state path.
func BenchmarkDESDispatch(b *testing.B) {
	const ringNodes = 64
	buildRing := func(register func(des.Component) des.ComponentID,
		connect func(des.ComponentID, string, des.ComponentID, string, des.Time)) des.ComponentID {
		ids := make([]des.ComponentID, ringNodes)
		for i := range ids {
			ids[i] = register(lightHop{})
		}
		for i := range ids {
			connect(ids[i], "next", ids[(i+1)%ringNodes], "next", 1)
		}
		return ids[0]
	}
	b.Run("sequential", func(b *testing.B) {
		e := des.NewEngine()
		first := buildRing(e.Register, e.Connect)
		b.ReportAllocs()
		b.ResetTimer()
		e.ScheduleAt(0, first, des.Payload{A: int64(b.N)})
		e.Run(0)
	})
	b.Run("parallel-2", func(b *testing.B) {
		e := des.NewParallelEngine(2, 1000)
		part := 0
		register := func(c des.Component) des.ComponentID {
			id := e.RegisterIn(part, c)
			return id
		}
		firstA := buildRing(register, e.Connect)
		part = 1
		firstB := buildRing(register, e.Connect)
		b.ReportAllocs()
		b.ResetTimer()
		e.ScheduleAt(0, firstA, des.Payload{A: int64(b.N / 2)})
		e.ScheduleAt(0, firstB, des.Payload{A: int64(b.N / 2)})
		e.Run(0)
	})
}

// lightHop forwards a decrementing counter around its ring with no
// synthetic handler work: the benchmark time is engine overhead.
type lightHop struct{}

func (lightHop) HandleEvent(ctx *des.Context, ev des.Event) {
	if n := ev.Payload.A; n > 0 {
		ctx.Send("next", 0, des.Payload{A: n - 1})
	}
}

// BenchmarkAblationContention compares the network model with and
// without link-level contention accounting.
func BenchmarkAblationContention(b *testing.B) {
	m := network.New(topo.NewFatTree(32, 32, 8), network.Params{
		InjectionOverhead: 1.2e-6, HopLatency: 110e-9,
		LinkBandwidth: 12.5e9, EagerLimit: 8192,
	})
	flows := make([]network.Flow, 64)
	for i := range flows {
		flows[i] = network.Flow{Src: i, Dst: (i + 512) % 1024, Bytes: 1 << 20}
	}
	b.Run("independent", func(b *testing.B) {
		b.ReportAllocs()
		var t float64
		for i := 0; i < b.N; i++ {
			t = 0
			for _, f := range flows {
				if v := m.PointToPoint(f.Src, f.Dst, f.Bytes); v > t {
					t = v
				}
			}
		}
		b.ReportMetric(t*1e6, "slowest-us")
	})
	b.Run("contended", func(b *testing.B) {
		b.ReportAllocs()
		var t float64
		for i := 0; i < b.N; i++ {
			t = m.Congested(flows)
		}
		b.ReportMetric(t*1e6, "slowest-us")
	})
}

// BenchmarkAblationMonteCarloCount measures prediction variance against
// the Monte Carlo replication count.
func BenchmarkAblationMonteCarloCount(b *testing.B) {
	c := sharedCtx(b)
	cfg := c.Quartz.Cost.Config
	app := lulesh.App(10, 64, 100, lulesh.ScenarioL1, cfg)
	arch := beo.NewArchBEO(c.Quartz.M, cfg.NodeSize)
	workflow.BindLulesh(arch, c.Models)
	for _, n := range []int{4, 16, 64} {
		n := n
		b.Run(map[int]string{4: "mc-4", 16: "mc-16", 64: "mc-64"}[n], func(b *testing.B) {
			b.ReportAllocs()
			var s stats.Summary
			for i := 0; i < b.N; i++ {
				runs := besst.Replicate(app, arch, n,
					besst.WithMode(besst.Direct),
					besst.WithPerRankNoise(true),
					besst.WithSeed(uint64(i)))
				s = stats.Summarize(besst.Makespans(runs))
			}
			b.ReportMetric(100*s.Std/s.Mean, "relStd%")
		})
	}
}

// BenchmarkAblationRSGroupSize measures Reed-Solomon encode throughput
// (the FTI L3 compute cost) across group sizes.
func BenchmarkAblationRSGroupSize(b *testing.B) {
	const shard = 1 << 18
	for _, g := range []int{4, 8, 16} {
		g := g
		b.Run(map[int]string{4: "group-4", 8: "group-8", 16: "group-16"}[g], func(b *testing.B) {
			k := g - g/2
			coder := erasure.NewCoder(k, g/2)
			data := make([][]byte, k)
			for i := range data {
				data[i] = make([]byte, shard)
				for j := range data[i] {
					data[i][j] = byte(i + j)
				}
			}
			b.SetBytes(int64(k * shard))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				coder.Encode(data)
			}
		})
	}
}

// BenchmarkAblationDalyVsFixedPeriod compares a fixed 40-step
// checkpoint period (the paper's case study) against the Daly-optimal
// period under fault injection.
func BenchmarkAblationDalyVsFixedPeriod(b *testing.B) {
	c := sharedCtx(b)
	var rows []exp.FaultCase
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows = exp.FaultStudy(c, 25, 64, 600000, 5, 5)
	}
	fixed := rows[3].MeanWall // Case 4: L1&L2 every 40 steps
	daly := rows[4].MeanWall  // Case 4b: L2 at the Daly period
	b.ReportMetric(fixed/daly, "fixed/daly")
}

// BenchmarkExtAllLevels regenerates the all-four-FTI-levels extension
// study (the paper's future-work item: L3/L4 need the communication and
// PFS models this reproduction includes).
func BenchmarkExtAllLevels(b *testing.B) {
	c := sharedCtx(b)
	var rows []exp.LevelRow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = exp.AllLevelsStudy(c)
	}
	b.ReportMetric(rows[3].AmortizedOverheadPct, "l4AmortOvhd%")
}

// BenchmarkExtOptimalLevel regenerates the optimal-FT-level-vs-failure-
// rate extension study: the cost/benefit balance the paper's
// introduction motivates.
func BenchmarkExtOptimalLevel(b *testing.B) {
	c := sharedCtx(b)
	var rows []exp.OptLevelRow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = exp.OptimalLevelStudy(c, 25, 1000, 100000, 4, []float64{2000, 20})
	}
	b.ReportMetric(float64(rows[1].Best), "bestLevel@20h")
}

// BenchmarkAblationAnalyticVsFlowLevel compares the two network-model
// tiers on the same traffic: the coarse analytic bound (package
// network) vs flow-level max-min simulation (package netsim) — the
// "hand the flagged region to a finer-grained simulator" move of the
// paper's pruning workflow.
func BenchmarkAblationAnalyticVsFlowLevel(b *testing.B) {
	ft := topo.NewFatTree(16, 16, 8)
	params := network.Params{
		InjectionOverhead: 0, HopLatency: 0,
		LinkBandwidth: 12.5e9, EagerLimit: 0,
	}
	analytic := network.New(ft, params)
	const n = 128
	aflows := make([]network.Flow, n)
	sflows := make([]netsim.Flow, n)
	for i := 0; i < n; i++ {
		src, dst := i%ft.Nodes(), (i*7+64)%ft.Nodes()
		if dst == src {
			dst = (dst + 1) % ft.Nodes()
		}
		aflows[i] = network.Flow{Src: src, Dst: dst, Bytes: 4 << 20}
		sflows[i] = netsim.Flow{Src: src, Dst: dst, Bytes: 4 << 20}
	}
	b.Run("analytic", func(b *testing.B) {
		b.ReportAllocs()
		var v float64
		for i := 0; i < b.N; i++ {
			v = analytic.Congested(aflows)
		}
		b.ReportMetric(v*1e3, "makespan-ms")
	})
	b.Run("flow-level", func(b *testing.B) {
		b.ReportAllocs()
		var v float64
		for i := 0; i < b.N; i++ {
			v = netsim.Makespan(netsim.Simulate(ft, netsim.Config{LinkBandwidth: 12.5e9}, sflows))
		}
		b.ReportMetric(v*1e3, "makespan-ms")
	})
}

// BenchmarkExtAlgorithmicDSE regenerates the alternate-algorithm DSE
// extension (C/R vs ABFT crossover).
func BenchmarkExtAlgorithmicDSE(b *testing.B) {
	c := sharedCtx(b)
	var rows []exp.AlgDSERow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = exp.AlgorithmicDSE(c, 40)
	}
	abftWins := 0
	for _, r := range rows {
		if r.Winner == "ABFT" {
			abftWins++
		}
	}
	b.ReportMetric(float64(abftWins), "abftWins")
}

// BenchmarkMonteCarloDirect measures the Monte Carlo replication tier
// over one compiled Direct-mode run: the serial reference against the
// deterministic worker pool at GOMAXPROCS. Both variants return
// byte-identical makespan vectors; the speedup scales with cores.
func BenchmarkMonteCarloDirect(b *testing.B) {
	c := sharedCtx(b)
	cfg := c.Quartz.Cost.Config
	app := lulesh.App(15, 216, 60, lulesh.ScenarioL1L2, cfg)
	arch := beo.NewArchBEO(c.Quartz.M, cfg.NodeSize)
	workflow.BindLulesh(arch, c.Models)
	cr := besst.Compile(app, arch)
	opts := []besst.Option{
		besst.WithMode(besst.Direct), besst.WithPerRankNoise(true), besst.WithSeed(42),
	}
	const mcN = 32
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", runtime.GOMAXPROCS(0)}} {
		runOpts := append(opts[:len(opts):len(opts)], besst.WithConcurrency(bc.workers))
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cr.Replicate(mcN, runOpts...)
			}
		})
	}
}

// BenchmarkTracingOverhead measures the observability hooks on the DES
// engine path: "off" is the nil-guarded default (the <2% overhead
// gate), "recording" runs the same replication with a TraceBuffer and
// Collector teed onto every engine.
func BenchmarkTracingOverhead(b *testing.B) {
	c := sharedCtx(b)
	cfg := c.Quartz.Cost.Config
	app := lulesh.App(10, 64, 40, lulesh.ScenarioL1L2, cfg)
	arch := beo.NewArchBEO(c.Quartz.M, cfg.NodeSize)
	workflow.BindLulesh(arch, c.Models)
	cr := besst.Compile(app, arch)
	opts := []besst.Option{
		besst.WithMode(besst.DES), besst.WithPerRankNoise(true),
		besst.WithSeed(42), besst.WithConcurrency(1),
	}
	const mcN = 4
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cr.Replicate(mcN, opts...)
		}
	})
	b.Run("recording", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col := obs.NewCollector()
			tracedOpts := append(opts[:len(opts):len(opts)],
				besst.WithTracer(obs.Tee(obs.NewTraceBuffer(obs.DefaultTraceCap), col)),
				besst.WithCollector(col))
			cr.Replicate(mcN, tracedOpts...)
		}
	})
}

// BenchmarkOverheadSweep measures the DSE sweep tier: the full grid
// evaluated serially against the cell-level worker pool at GOMAXPROCS,
// with identical cells either way (pre-assigned per-point seeds).
func BenchmarkOverheadSweep(b *testing.B) {
	c := sharedCtx(b)
	cfg := dse.SweepConfig{
		EPRs:      []int{10, 15},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2},
		Timesteps: 40,
		MCRuns:    3,
		Seed:      43,
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", runtime.GOMAXPROCS(0)}} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			cfg.Workers = bc.workers
			for i := 0; i < b.N; i++ {
				dse.OverheadSweep(c.Models, c.Quartz.M, c.Quartz.Cost.Config.NodeSize, cfg)
			}
		})
	}
}

// BenchmarkExtArchitecturalDSE regenerates the hardware-variant DSE
// extension (Co-Design architectural axis).
func BenchmarkExtArchitecturalDSE(b *testing.B) {
	c := sharedCtx(b)
	var rows []exp.ArchDSERow
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = exp.ArchitecturalDSE(c)
	}
	b.ReportMetric(rows[0].L1OverheadPct, "baseL1Ovhd%")
}
