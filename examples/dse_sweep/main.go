// Design-space exploration with fault-tolerance awareness: sweep the
// (problem size, ranks, FT level) grid through the simulator, print the
// Fig 9-style overhead tables, rank the FT levels at a design point,
// and show the pruning report that routes divergent regions to direct
// benchmarking or fine-grained simulation.
//
// Run with: go run ./examples/dse_sweep
package main

import (
	"besst/internal/cli"
	"besst/internal/dse"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/workflow"
)

func main() {
	out := cli.Stdout()
	defer out.ExitOnErr("dse_sweep")
	em := groundtruth.NewQuartz()
	out.Println("developing models for the DSE sweep...")
	models, campaign := workflow.DevelopLuleshQuartz(em, 8, workflow.SymbolicRegression, 7)

	cells := dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, dse.SweepConfig{
		EPRs:      []int{10, 15, 20, 25},
		Ranks:     []int{64, 1000},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2},
		Timesteps: 200,
		MCRuns:    5,
		Seed:      8,
	})

	out.Println("\noverhead relative to the 64-rank no-FT run at each problem size:")
	out.Println(dse.FormatOverheadTable(cells, 64))
	out.Println(dse.FormatOverheadTable(cells, 1000))

	out.Println("FT-level ranking at epr=20, ranks=1000 (cheapest first):")
	for i, c := range dse.RankFTLevels(cells, 20, 1000) {
		out.Printf("  %d. %-8s %8.4gs  (%.0f%%)\n", i+1, c.Scenario, c.MeanSec, c.OverheadPct)
	}

	out.Println("\npruning report (model-vs-benchmark divergence > 12%):")
	flagged := 0
	for _, d := range dse.PruneReport(models, campaign, 12) {
		if d.Flagged {
			flagged++
			out.Printf("  %-18s epr=%-3d ranks=%-5d %+6.1f%%  %s\n",
				d.Op, d.EPR, d.Ranks, d.PercentError, d.Advice)
		}
	}
	if flagged == 0 {
		out.Println("  nothing flagged at this threshold")
	}
}
