// The paper's full case study: LULESH with FTI checkpointing on LLNL
// Quartz (Section IV). Benchmarks the Table II grid, develops and
// validates symbolic-regression models for the timestep and the L1/L2
// checkpoint instances (Table III), then runs the three full-system
// scenarios of Figs 7-8 and reports their validation error (Table IV's
// diagonal of this grid).
//
// Run with: go run ./examples/lulesh_quartz
package main

import (
	"os"

	"besst/internal/besst"
	"besst/internal/cli"
	"besst/internal/exp"
	"besst/internal/lulesh"
)

func main() {
	out := cli.Stdout()
	defer out.ExitOnErr("lulesh_quartz")
	out.Println("LULESH + FTI on Quartz - the paper's case study")
	out.Println("developing models from the Table II campaign (this takes a few seconds)...")
	ctx := exp.NewContext(8, 42)

	out.Println("\n-- Table III: instance-model validation --")
	exp.FormatTable3(os.Stdout, exp.Table3(ctx))

	out.Println("\n-- Fig 7: 200 timesteps at 64 ranks (DES mode) --")
	exp.FormatFullRun(os.Stdout, "", exp.FigFullRun(ctx, 10, 64, 200, 5, besst.DES), 40)

	out.Println("\n-- scenario comparison at 1000 ranks (direct mode) --")
	for _, s := range exp.FigFullRun(ctx, 10, 1000, 200, 5, besst.Direct) {
		out.Printf("  %-8s predicted total %8.4gs  measured %8.4gs  series MAPE %5.2f%%\n",
			s.Scenario, s.Predicted[len(s.Predicted)-1], s.Measured[len(s.Measured)-1], s.MAPE)
	}

	out.Println("\n-- checkpoint level semantics in effect --")
	for _, sc := range []lulesh.Scenario{lulesh.ScenarioL1, lulesh.ScenarioL1L2} {
		out.Printf("  scenario %-8s:", sc.Name)
		for _, sch := range sc.Schedules {
			out.Printf(" level %d every %d steps;", sch.Level, sch.Period)
		}
		out.Println()
	}
}
