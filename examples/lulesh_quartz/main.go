// The paper's full case study: LULESH with FTI checkpointing on LLNL
// Quartz (Section IV). Benchmarks the Table II grid, develops and
// validates symbolic-regression models for the timestep and the L1/L2
// checkpoint instances (Table III), then runs the three full-system
// scenarios of Figs 7-8 and reports their validation error (Table IV's
// diagonal of this grid).
//
// Run with: go run ./examples/lulesh_quartz
package main

import (
	"fmt"
	"os"

	"besst/internal/besst"
	"besst/internal/exp"
	"besst/internal/lulesh"
)

func main() {
	fmt.Println("LULESH + FTI on Quartz - the paper's case study")
	fmt.Println("developing models from the Table II campaign (this takes a few seconds)...")
	ctx := exp.NewContext(8, 42)

	fmt.Println("\n-- Table III: instance-model validation --")
	exp.FormatTable3(os.Stdout, exp.Table3(ctx))

	fmt.Println("\n-- Fig 7: 200 timesteps at 64 ranks (DES mode) --")
	exp.FormatFullRun(os.Stdout, "", exp.FigFullRun(ctx, 10, 64, 200, 5, besst.DES), 40)

	fmt.Println("\n-- scenario comparison at 1000 ranks (direct mode) --")
	for _, s := range exp.FigFullRun(ctx, 10, 1000, 200, 5, besst.Direct) {
		fmt.Printf("  %-8s predicted total %8.4gs  measured %8.4gs  series MAPE %5.2f%%\n",
			s.Scenario, s.Predicted[len(s.Predicted)-1], s.Measured[len(s.Measured)-1], s.MAPE)
	}

	fmt.Println("\n-- checkpoint level semantics in effect --")
	for _, sc := range []lulesh.Scenario{lulesh.ScenarioL1, lulesh.ScenarioL1L2} {
		fmt.Printf("  scenario %-8s:", sc.Name)
		for _, sch := range sc.Schedules {
			fmt.Printf(" level %d every %d steps;", sch.Level, sch.Period)
		}
		fmt.Println()
	}
}
