// Fault injection — the paper's planned extension (Cases 2 and 4 of
// its Fig 4), implemented here: simulate a long LULESH campaign on
// failure-prone nodes without fault tolerance (every failure restarts
// from scratch) and with multi-level FTI checkpointing (restore from
// the cheapest sufficient level), compare against the Young/Daly
// analytic expectation, and show how the optimal checkpoint period
// emerges.
//
// Run with: go run ./examples/fault_injection
package main

import (
	"os"

	"besst/internal/analytic"
	"besst/internal/cli"
	"besst/internal/exp"
	"besst/internal/faults"
	"besst/internal/fti"
	"besst/internal/lulesh"
)

func main() {
	out := cli.Stdout()
	defer out.ExitOnErr("fault_injection")
	out.Println("developing models (shared with the case study)...")
	ctx := exp.NewContext(8, 42)

	// Fig 4's cases on a pessimistic machine (5-hour node MTBF, so the
	// ~35-minute job sees a handful of failures).
	out.Println("\n-- Fig 4 cases: LULESH, 64 ranks, epr 25, 600k steps --")
	exp.FormatFaultStudy(os.Stdout, exp.FaultStudy(ctx, 25, 64, 600000, 40, 5))

	// The Young/Daly trade-off, observed by injection: sweep the
	// checkpoint period and compare wall time against Daly's formula.
	// Restart here is the warm FTI restore (the surviving allocation
	// reloads the L2 checkpoint) rather than full node replacement.
	cfg := ctx.Quartz.Cost.Config
	stepSec := ctx.Models.ByOp[lulesh.OpTimestep].Predict(map[string]float64{"epr": 10, "ranks": 64})
	ckptSec := ctx.Models.ByOp[lulesh.OpCkptL2].Predict(map[string]float64{"epr": 10, "ranks": 64})
	restart := ctx.Quartz.Cost.RestartTime(fti.L2, 64, lulesh.CheckpointBytes(10)) -
		ctx.Quartz.M.RecoverySeconds + 10 // warm restart: reload I/O + 10s respawn

	fm := faults.FaultModel{Nodes: 32, FaultsPerNodeHour: 1.5, HardFraction: 0.5}
	mtbf := fm.SystemMTBFSeconds()
	const steps = 2000000
	solve := float64(steps) * stepSec

	out.Printf("\n-- checkpoint-period sweep (L2, system MTBF %.0fs, solve %.0fs) --\n", mtbf, solve)
	out.Printf("  %10s %14s %14s\n", "period", "injected wall", "Daly model")
	for _, period := range []int{500, 2000, 8000, 32000, 128000} {
		spec := faults.JobSpec{
			Steps: steps, StepSec: stepSec,
			Schedules:         []faults.CkptSchedule{{Level: fti.L2, Period: period}},
			CkptSec:           func(fti.Level) float64 { return ckptSec },
			RestartSec:        func(fti.Level) float64 { return restart },
			ScratchRestartSec: 2 * ctx.Quartz.M.RecoverySeconds,
		}
		runs := faults.MonteCarlo(spec, fm, cfg, 20, uint64(period))
		daly := analytic.DalyWallTime(solve, ckptSec, restart, mtbf, float64(period)*stepSec)
		out.Printf("  %10d %13.1fs %13.1fs\n", period, faults.MeanWall(runs), daly)
	}
	tau := analytic.DalyPeriod(ckptSec, mtbf)
	out.Printf("  Daly-optimal period: %.0f steps (tau %.1fs)\n", tau/stepSec, tau)
}
