// Notional-system prediction: the validate-then-extrapolate capability
// of Fig 1 and the prediction regions of Figs 5-6. Models validated on
// the benchmarked grid predict (a) larger problem sizes (a notional
// machine with more memory per node), (b) more ranks than the machine
// allocation, and (c) CMT-bone on a Vulcan grown well past its physical
// 24,576 nodes — up to a million ranks.
//
// Run with: go run ./examples/notional_scaling
package main

import (
	"fmt"

	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/cli"
	"besst/internal/exp"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/perfmodel"
	"besst/internal/stats"
	"besst/internal/workflow"
)

func main() {
	out := cli.Stdout()
	defer out.ExitOnErr("notional_scaling")
	out.Println("developing LULESH models on the Table II grid...")
	ctx := exp.NewContext(8, 42)

	// (a)+(b): predict beyond the benchmarked region, the Figs 5-6
	// prediction columns.
	out.Println("\npredictions beyond the benchmarked grid:")
	out.Printf("  %-18s %10s %10s\n", "function", "epr=30", "ranks=1331")
	for _, op := range []string{lulesh.OpTimestep, lulesh.OpCkptL1, lulesh.OpCkptL2} {
		m := ctx.Models.ByOp[op]
		epr30 := m.Predict(perfmodel.Params{"epr": 30, "ranks": 1000})
		r1331 := m.Predict(perfmodel.Params{"epr": 25, "ranks": 1331})
		out.Printf("  %-18s %9.4gs %9.4gs\n", op, epr30, r1331)
	}

	// Simulate the notional 1331-rank run end to end: Quartz holds
	// 1331 ranks easily, but the benchmarked grid stopped at 1000 —
	// this is the Fig 6 prediction region driven through the full
	// simulator.
	cfg := ctx.Quartz.Cost.Config
	// 1331 = 11^3 is a perfect cube but not a multiple of 8, so (like
	// the paper, whose 1331-rank point is model-only) checkpointed
	// scenarios cannot launch; simulate the no-FT run.
	app := lulesh.App(25, 1331, 100, lulesh.ScenarioNoFT, cfg)
	arch := beo.NewArchBEO(ctx.Quartz.M, cfg.NodeSize)
	workflow.BindLulesh(arch, ctx.Models)
	runs := besst.Replicate(app, arch, 10,
		besst.WithMode(besst.Direct), besst.WithPerRankNoise(true), besst.WithSeed(5))
	s := stats.Summarize(besst.Makespans(runs))
	out.Printf("\nsimulated %s: mean %.4gs std %.3gs\n", app.Name, s.Mean, s.Std)

	// (c): Fig 1 — grow Vulcan notionally and predict to 1M ranks.
	out.Println("\nFig 1-style: CMT-bone on Vulcan, validated to 131072 ranks,")
	out.Println("predicted to 1M ranks on a notionally grown torus:")
	r := exp.Fig1(20, 5, 7)
	for _, p := range r.Points {
		if p.PSize != 64 {
			continue
		}
		tag := "validated"
		meas := fmt.Sprintf("measured %8.4gs,", p.MeasuredSec)
		if p.Prediction {
			tag = "PREDICTED"
			meas = "                    "
		}
		out.Printf("  ranks %8d: %s simulated %8.4gs +/- %.3g  [%s]\n",
			p.Ranks, meas, p.SimMeanSec, p.SimStdSec, tag)
	}

	grown := machine.Notional(machine.Vulcan(), 65536, 0)
	out.Printf("\nnotional machine used at 1M ranks: %s (%d-node torus)\n",
		grown.Name, grown.Topology.Nodes())
}
