// Algorithmic design-space exploration — the Co-Design move of the
// paper's Section III-B: swap one function's performance model for an
// alternate algorithm's model and let simulation pick the winner per
// design point, "without having to run on the system".
//
// Here the alternates are two fault-tolerance strategies for LULESH:
// the baseline timestep plus periodic L1 checkpointing (C/R) versus an
// algorithm-based fault-tolerant timestep (checksummed kernels, no
// checkpoint I/O). C/R's cost grows with rank count (coordinated
// checkpointing); ABFT's is a roughly constant compute factor — so a
// crossover appears along the ranks axis.
//
// Run with: go run ./examples/algorithmic_dse
package main

import (
	"os"

	"besst/internal/cli"
	"besst/internal/exp"
	"besst/internal/groundtruth"
)

func main() {
	out := cli.Stdout()
	defer out.ExitOnErr("algorithmic_dse")
	out.Println("developing baseline + checkpoint models...")
	ctx := exp.NewContext(8, 42)

	out.Printf("\nABFT variant: %.0f%% kernel overhead plus a surface-term verification pass\n",
		100*(groundtruth.ABFTOverheadFactor-1))

	rows := exp.AlgorithmicDSE(ctx, 40)
	exp.FormatAlgDSE(os.Stdout, rows, 40)

	// Summarize the frontier.
	firstABFT := map[int]int{}
	for _, r := range rows {
		if r.Winner == "ABFT" {
			if _, seen := firstABFT[r.EPR]; !seen {
				firstABFT[r.EPR] = r.Ranks
			}
		}
	}
	out.Println("\ncrossover frontier (smallest rank count where ABFT wins):")
	for _, epr := range exp.CaseEPRs {
		if ranks, ok := firstABFT[epr]; ok {
			out.Printf("  epr %2d: ABFT from %d ranks\n", epr, ranks)
		} else {
			out.Printf("  epr %2d: C/R everywhere\n", epr)
		}
	}
}
