// Quickstart: the FT-BESST workflow end to end in ~60 lines.
//
//  1. Benchmark an application block on the (emulated) machine.
//  2. Fit a performance model from the samples (Model Development).
//  3. Bind the model into an ArchBEO and simulate an AppBEO with
//     checkpointing (FT-aware Co-Design).
//
// Run with: go run ./examples/quickstart
package main

import (
	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/cli"
	"besst/internal/fti"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/stats"
	"besst/internal/workflow"
)

func main() {
	out := cli.Stdout()
	defer out.ExitOnErr("quickstart")
	// The "real machine": an emulated LLNL Quartz with the case
	// study's FTI configuration (groups of 4 nodes, 2 ranks/node).
	quartz := groundtruth.NewQuartz()

	// 1. Benchmark: time the LULESH timestep and L1 checkpoint over a
	//    small (epr, ranks) grid, 6 samples per combination.
	campaign := benchdata.CollectLulesh(quartz, benchdata.LuleshPlan{
		EPRs:       []int{5, 10, 15},
		Ranks:      []int{8, 64},
		Levels:     []fti.Level{fti.L1},
		SamplesPer: 6,
		Seed:       1,
	})
	out.Printf("benchmarked %d samples\n", len(campaign.Samples))

	// 2. Model Development: symbolic regression over the samples.
	models := workflow.Develop(campaign, workflow.SymbolicRegression, []string{"epr", "ranks"}, 2)
	for _, r := range models.Reports {
		out.Printf("model %-18s validation MAPE %5.2f%%  %s\n", r.Op, r.ValidationMAPE, r.Expression)
	}

	// 3. Simulate: 100 LULESH timesteps at epr 10 on 64 ranks with L1
	//    checkpointing every 40 steps, 10 Monte Carlo replications.
	app := lulesh.App(10, 64, 100, lulesh.ScenarioL1, quartz.Cost.Config)
	arch := beo.NewArchBEO(quartz.M, quartz.Cost.Config.NodeSize)
	workflow.BindLulesh(arch, models)

	runs := besst.Replicate(app, arch, 10,
		besst.WithMode(besst.DES), besst.WithPerRankNoise(true), besst.WithSeed(3))
	s := stats.Summarize(besst.Makespans(runs))
	out.Printf("\npredicted runtime for %s:\n", app.Name)
	out.Printf("  mean %.4gs  std %.3gs over %d replications (%d events/run)\n",
		s.Mean, s.Std, s.N, runs[0].Events)

	// Compare against a "real" run on the emulated machine.
	measured := quartz.FullRun(10, 64, 100, lulesh.ScenarioL1, stats.NewRNG(4))
	out.Printf("  measured on the machine: %.4gs (%.1f%% error)\n",
		measured[len(measured)-1],
		stats.PercentError(measured[len(measured)-1], s.Mean))
}
