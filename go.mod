module besst

go 1.22
