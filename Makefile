GO ?= go

.PHONY: check build test vet fmt race bench parbench

# check is the tier-1 gate: formatting, static analysis, build, and the
# race-enabled internal test suite (the parallel tiers are only trusted
# under -race).
check: fmt vet build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# parbench regenerates results/BENCH_parallel.json (serial vs parallel
# simulator timings; speedup scales with available cores).
parbench: build
	$(GO) run ./cmd/besst-bench -parbench -workers 0
