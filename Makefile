GO ?= go

.PHONY: check build test vet fmt lint lint-self lint-fixtures lint-fixtures-verify race bench parbench bench-parallel bench-hotpath bench-compare bench-dse profile trace-fixtures chaos fuzz serve-smoke dist-smoke dse-smoke

# check is the tier-1 gate: formatting, static analysis (vet and
# besst-lint, including the analyzer linting itself and its golden
# fixtures verified against the committed tree), build, the
# race-enabled internal test suite (the parallel tiers are only trusted
# under -race), the observability fixtures, the campaign-resilience
# chaos/crash suite, the simulation-service smoke gate, the
# distributed-execution smoke gate (real worker processes, one
# chaos-killed mid-run), the surrogate-search smoke gate (memo-warm
# re-search must be byte-identical), and the hot-path,
# parallel-scaling, and search-quality bench-regression gates.
check: fmt vet lint lint-self lint-fixtures-verify build race trace-fixtures chaos serve-smoke dist-smoke dse-smoke bench-compare bench-parallel bench-dse

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs besst-lint's determinism and DES invariant checks over the
# whole module; the committed tree must produce zero findings.
lint:
	$(GO) run ./cmd/besst-lint ./...

# lint-self holds the analyzer to its own standards: besst-lint runs
# over internal/lint with every check enabled.
lint-self:
	$(GO) run ./cmd/besst-lint ./internal/lint

# lint-fixtures exercises the analyzer itself against its golden
# fixture packages (add -update after editing a check or fixture).
lint-fixtures:
	$(GO) test ./internal/lint -run 'TestGolden|TestSuppression|TestSubsetRun|TestDeterministic' -v

# lint-fixtures-verify regenerates the golden files and fails if the
# committed testdata no longer matches what the checks produce — the
# goldens cannot drift from the analyzer silently.
lint-fixtures-verify:
	$(GO) test ./internal/lint -run TestGolden -update
	git diff --exit-code -- internal/lint/testdata

race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# parbench regenerates results/BENCH_parallel.json (serial vs parallel
# simulator timings; speedup scales with available cores). GOMAXPROCS
# is pinned to >= max(4, workers) inside the harness; on machines with
# too few CPUs the report records scaling_valid=false.
parbench: build
	$(GO) run ./cmd/besst-bench -parbench -workers 0

# bench-parallel is the parallel-scaling regression gate: a fresh
# parbench report (gitignored) is diffed against the committed
# results/BENCH_parallel.json and the target fails on ns/op growth
# beyond the tolerance, serial/parallel divergence, or — on
# scaling-capable hardware — parallel speedup dropping below the
# committed baseline. The parbench tiers are whole-campaign macro
# benchmarks whose absolute timings swing >10% run-to-run on a loaded
# shared runner (benchdiff's default), so the gate here runs at 25%:
# wide enough to stay deterministic in `make check`, tight enough to
# catch real regressions. The speedup floor is ratio-based and
# unaffected by the widened ns/op band.
bench-parallel: build
	$(GO) run ./cmd/besst-bench -parbench -workers 0 -parbench-out results/BENCH_parallel_fresh.json
	$(GO) run ./cmd/benchdiff -parallel -tol 25

# bench-hotpath regenerates results/BENCH_hotpath.json, the
# allocation-sensitive hot-path measurements (raw DES dispatch plus the
# Monte Carlo and DSE macro tiers). The file is gitignored; commit its
# contents to results/BENCH_hotpath_baseline.json to move the gate.
bench-hotpath: build
	$(GO) run ./cmd/besst-bench -hotpath

# bench-compare is the bench-regression gate: fresh hot-path numbers
# are diffed against the committed baseline and the target fails on
# >10% ns/op growth or ANY allocs/op growth.
bench-compare: bench-hotpath
	$(GO) run ./cmd/benchdiff

# bench-dse is the surrogate-search quality gate: a fresh search run on
# a small grid (gitignored report) is diffed against the committed
# results/BENCH_dse_baseline.json and the target fails when the search
# fully simulates more points than the baseline, the optimality gap vs
# the exhaustive sweep grows past the slack, or a memo-warm re-search
# stops reproducing the cold result byte-for-byte.
bench-dse: build
	$(GO) run ./cmd/besst-bench -dse
	$(GO) run ./cmd/benchdiff -dse

# trace-fixtures runs the observability golden fixtures: trace-buffer
# pairing, Chrome trace and metrics document round-trips, and the
# instrumentation-leaves-results-identical gates.
trace-fixtures:
	$(GO) test ./internal/obs ./internal/des ./internal/besst \
		-run 'Trace|Metrics|Tracer|Collector|Instrumentation|Observability' -v

# chaos exercises the campaign fault envelope end to end: deterministic
# panic/delay injection through the retry and quarantine machinery, and
# the SIGKILL-mid-campaign resume test asserting byte-identical output.
chaos:
	$(GO) test -race ./internal/resilience -run 'Chaos|KillAndResume|Resume|Retries|Watchdog' -v

# serve-smoke boots the besst-serve daemon in-process, runs the README
# quickstart campaign twice over real HTTP, and gates on the service
# invariants: byte-identical cold/warm result bodies, a compile-cache
# hit on the second identical request (visible in /v1/statz), and an
# exact match against the committed golden result document. Regenerate
# the golden with:
#   go run ./cmd/besst-serve -smoke -golden results/GOLDEN_serve_smoke.json -update-golden
serve-smoke: build
	$(GO) run ./cmd/besst-serve -smoke -golden results/GOLDEN_serve_smoke.json

# dist-smoke is the distributed-execution gate: the coordinator runs
# the quickstart campaign over three real besst-worker processes across
# a matrix of shard counts and replication degrees — one worker
# chaos-configured to SIGKILL itself mid-shard — and every merged
# result must be byte-identical to the single-process reference and to
# the committed serve golden, with the worker loss actually observed
# (retries > 0, workers lost > 0).
dist-smoke: build
	$(GO) run ./cmd/besst-worker -smoke -golden results/GOLDEN_serve_smoke.json

# dse-smoke is the surrogate-search service gate: the pinned search
# campaign runs twice against an in-process besst-serve and the target
# fails unless the warm run hits the point memo and both result bodies
# are byte-identical.
dse-smoke: build
	$(GO) run ./cmd/besst-serve -smoke-dse

# fuzz runs the short corruption fuzzers: the checkpoint-journal reader
# (torn tails, garbage lines) and the AppBEO JSON decoder.
fuzz:
	$(GO) test ./internal/resilience -run xxx -fuzz FuzzReadJournal -fuzztime 20s
	$(GO) test ./internal/beo -run xxx -fuzz FuzzAppBEOJSON -fuzztime 20s

# profile captures a full observability bundle from a small DES run:
# CPU and heap profiles, a Chrome trace, and the run-metrics document,
# all under results/.
profile: build
	$(GO) run ./cmd/besst-sim -mode des -epr 5 -ranks 8 -steps 20 -mc 4 -samples 3 \
		-cpuprofile results/cpu.pprof -memprofile results/heap.pprof \
		-trace results/trace.json -metrics results/
	@echo "wrote results/cpu.pprof results/heap.pprof results/trace.json results/METRICS_besst-sim.json"
