GO ?= go

.PHONY: check build test vet fmt lint lint-fixtures race bench parbench

# check is the tier-1 gate: formatting, static analysis (vet and
# besst-lint), build, and the race-enabled internal test suite (the
# parallel tiers are only trusted under -race).
check: fmt vet lint build race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# lint runs besst-lint's determinism and DES invariant checks over the
# whole module; the committed tree must produce zero findings.
lint:
	$(GO) run ./cmd/besst-lint ./...

# lint-fixtures exercises the analyzer itself against its golden
# fixture packages (add -update after editing a check or fixture).
lint-fixtures:
	$(GO) test ./internal/lint -run 'TestGolden|TestSuppression|TestSubsetRun|TestDeterministic' -v

race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# parbench regenerates results/BENCH_parallel.json (serial vs parallel
# simulator timings; speedup scales with available cores).
parbench: build
	$(GO) run ./cmd/besst-bench -parbench -workers 0
