// Command besst-worker runs one shard-execution worker for the
// distributed campaign layer (internal/dist): a stateless HTTP process
// that executes index ranges of monte_carlo and dse_sweep campaigns on
// demand and answers byte-canonical per-unit payloads.
//
//	besst-worker -addr 127.0.0.1:9001 -auth-token secret
//	besst-worker -smoke -golden results/GOLDEN_serve_smoke.json
//
// Endpoints (see internal/dist and DESIGN.md):
//
//	POST /v1/shards    execute units [lo, hi) of a campaign
//	GET  /v1/healthz   liveness (coordinator heartbeat target)
//	GET  /v1/statz     compile-cache counters
//
// The chaos flags arm the deterministic fault injector — -chaos-kill
// SIGKILLs the worker itself mid-shard on a schedule that is a pure
// function of (-chaos-seed, unit index), which is how the dist smoke
// proves worker loss cannot change result bytes.
package main

import (
	"flag"
	"fmt"
	"os"

	"besst/internal/dist"
	"besst/internal/dse"
	"besst/internal/resilience"
	"besst/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8341", "listen address (use :0 for an ephemeral port; the bound address is printed)")
	authToken := flag.String("auth-token", "", "shared bearer token; empty disables auth")
	cacheCap := flag.Int("cache-cap", 8, "compile cache capacity (artifacts)")
	memoCap := flag.Int("memo-cap", 0, "cross-campaign design-point memo capacity (0: default)")
	memoJournal := flag.String("memo-journal", "", "append-only point-memo journal file; replayed on boot")
	workers := flag.Int("workers", 1, "intra-shard unit concurrency (scale by process count first)")
	chaosKill := flag.Float64("chaos-kill", 0, "per-unit probability of SIGKILLing this worker mid-shard")
	chaosDelay := flag.Float64("chaos-delay", 0, "per-unit probability of an injected straggler delay")
	chaosSeed := flag.Uint64("chaos-seed", 1, "chaos injector seed (schedule is deterministic per seed)")
	smoke := flag.Bool("smoke", false, "run the distributed smoke check (spawns worker subprocesses) and exit")
	golden := flag.String("golden", "", "golden result document the -smoke merged result must match")
	flag.Parse()

	if *smoke {
		if err := dist.Smoke(os.Stdout, dist.SmokeConfig{Golden: *golden}); err != nil {
			fatalf("%v", err)
		}
		return
	}

	var memo *dse.Memo
	if *memoJournal != "" {
		var err error
		if memo, err = dse.NewMemoJournal(*memoCap, *memoJournal); err != nil {
			fatalf("%v", err)
		}
		defer func() { _ = memo.Close() }()
	} else if *memoCap > 0 {
		memo = dse.NewMemo(*memoCap)
	}

	exec := serve.NewShardExecutor(serve.ExecConfig{
		Workers:  *workers,
		CacheCap: *cacheCap,
		Memo:     memo,
		Chaos: resilience.ChaosConfig{
			KillRate:  *chaosKill,
			DelayRate: *chaosDelay,
			Seed:      *chaosSeed,
		},
	})
	cfg := dist.WorkerConfig{AuthToken: *authToken, Executor: exec}
	err := dist.ListenAndServeWorker(*addr, cfg, func(bound string) {
		// Stdout on purpose — harnesses binding ":0" parse this line
		// for the port; errors on it are not actionable.
		_, _ = fmt.Printf("besst-worker listening on %s\n", bound)
	})
	if err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-worker: "+format+"\n", args...)
	os.Exit(1)
}
