// Command besst-exp reproduces the paper's tables and figures plus the
// extension experiments. With no flags it runs everything; individual
// experiments are selected with -table, -fig, and -ext.
//
//	besst-exp -table 3          # instance-model MAPE (Table III)
//	besst-exp -fig 9            # overhead tables (Fig 9)
//	besst-exp -ext faults       # fault-injection Cases 1-4
//	besst-exp -quick            # reduced Monte Carlo counts
//	besst-exp -quick -json      # JSON index of experiments run + wall times
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"besst/internal/besst"
	"besst/internal/cli"
	"besst/internal/exp"
)

func main() {
	table := flag.Int("table", 0, "reproduce one table (1-4); 0 = all")
	fig := flag.Int("fig", 0, "reproduce one figure (1, 5-9); 0 = all")
	ext := flag.String("ext", "", "extension experiment: faults | analytic | levels | optlevel | algdse | archdse")
	quick := flag.Bool("quick", false, "reduced sample and Monte Carlo counts")
	common := cli.RegisterCommon(flag.CommandLine, 0)
	flag.Parse()
	seed := &common.Seed

	samples, mc, steps := 10, 10, 200
	if *quick {
		samples, mc, steps = 5, 3, 80
	}

	ses, err := common.Begin("besst-exp")
	if err != nil {
		fatalf("%v", err)
	}

	selected := func(kind string, id int, name string) bool {
		if *table == 0 && *fig == 0 && *ext == "" {
			return true // run everything by default
		}
		switch kind {
		case "table":
			return *table == id
		case "fig":
			return *fig == id
		case "ext":
			return *ext == name
		}
		return false
	}

	w := cli.NewPrinter(os.Stdout)
	// phase brackets one experiment with a named wall-clock phase, so
	// -metrics (and the -json index) report per-experiment timings.
	phase := func(name string, fn func()) {
		done := ses.Phase(name)
		fn()
		done()
	}
	var ctx *exp.Context
	needCtx := selected("table", 3, "") || selected("table", 4, "") ||
		selected("fig", 5, "") || selected("fig", 6, "") || selected("fig", 7, "") ||
		selected("fig", 8, "") || selected("fig", 9, "") ||
		selected("ext", 0, "faults") || selected("ext", 0, "analytic") ||
		selected("ext", 0, "levels") || selected("ext", 0, "optlevel") ||
		selected("ext", 0, "algdse") || selected("ext", 0, "archdse")
	if needCtx {
		w.Printf("developing case-study models (%d samples/combination, seed %d)...\n\n", samples, *seed)
		phase("develop-models", func() { ctx = exp.NewContext(samples, *seed) })
		for _, r := range ctx.Models.Reports {
			w.Printf("  model %-18s train %6.2f%%  test %6.2f%%  validation %6.2f%%\n",
				r.Op, r.TrainMAPE, r.TestMAPE, r.ValidationMAPE)
			if r.Expression != "" {
				w.Printf("    %s\n", r.Expression)
			}
		}
		w.Println()
	}

	if selected("table", 1, "") {
		phase("table-1", func() { exp.Table1(w) })
		w.Println()
	}
	if selected("table", 2, "") {
		phase("table-2", func() { exp.Table2(w) })
		w.Println()
	}
	if selected("fig", 1, "") {
		w.Println("running Fig 1 (CMT-bone on Vulcan, predictions to 1M ranks)...")
		phase("fig-1", func() { exp.FormatFig1(w, exp.Fig1(20, mc, *seed+1)) })
		w.Println()
	}
	if selected("fig", 5, "") {
		phase("fig-5", func() {
			exp.FormatValidationPoints(w, "Fig 5: model validation vs problem size (epr)", exp.Fig5(ctx))
		})
		w.Println()
	}
	if selected("fig", 6, "") {
		phase("fig-6", func() {
			exp.FormatValidationPoints(w, "Fig 6: model validation vs number of ranks", exp.Fig6(ctx))
		})
		w.Println()
	}
	if selected("table", 3, "") {
		phase("table-3", func() { exp.FormatTable3(w, exp.Table3(ctx)) })
		w.Println()
	}
	if selected("fig", 7, "") {
		w.Println("running Fig 7 (DES mode, 64 ranks)...")
		phase("fig-7", func() {
			exp.FormatFullRun(w, "Fig 7: full application runtime, 64 ranks, epr 10",
				exp.FigFullRun(ctx, 10, 64, steps, mc, besst.DES), 20)
		})
		w.Println()
	}
	if selected("fig", 8, "") {
		w.Println("running Fig 8 (DES mode, 1000 ranks)...")
		phase("fig-8", func() {
			exp.FormatFullRun(w, "Fig 8: full application runtime, 1000 ranks, epr 10",
				exp.FigFullRun(ctx, 10, 1000, steps, mc, besst.DES), 20)
		})
		w.Println()
	}
	if selected("table", 4, "") {
		w.Println("running Table IV (full-system validation over the Table II grid)...")
		phase("table-4", func() { exp.FormatTable4(w, exp.Table4(ctx, steps, mc)) })
		w.Println()
	}
	if selected("fig", 9, "") {
		w.Println("running Fig 9 (overhead sweep)...")
		phase("fig-9", func() { exp.FormatFig9(w, exp.Fig9(ctx, steps, mc)) })
		w.Println()
	}
	if selected("ext", 0, "faults") {
		w.Println("running fault-injection extension (Fig 4 Cases 1-4)...")
		phase("ext-faults", func() {
			exp.FormatFaultStudy(w, exp.FaultStudy(ctx, 25, 64, 600000, 4*mc, 5))
		})
		w.Println()
	}
	if selected("ext", 0, "levels") {
		w.Println("running all-levels extension (FTI L1-L4 modeled)...")
		phase("ext-levels", func() { exp.FormatAllLevels(w, exp.AllLevelsStudy(ctx)) })
		w.Println()
	}
	if selected("ext", 0, "optlevel") {
		w.Println("running optimal-level extension (FT level vs failure rate)...")
		phase("ext-optlevel", func() {
			exp.FormatOptimalLevel(w, exp.OptimalLevelStudy(ctx, 25, 1000, 200000, mc,
				[]float64{2000, 200, 20, 5}))
		})
		w.Println()
	}
	if selected("ext", 0, "algdse") {
		w.Println("running algorithmic DSE extension (C/R vs ABFT)...")
		phase("ext-algdse", func() { exp.FormatAlgDSE(w, exp.AlgorithmicDSE(ctx, 40), 40) })
		w.Println()
	}
	if selected("ext", 0, "archdse") {
		w.Println("running architectural DSE extension (hardware variants)...")
		phase("ext-archdse", func() { exp.FormatArchDSE(w, exp.ArchitecturalDSE(ctx)) })
		w.Println()
	}
	if selected("ext", 0, "analytic") {
		phase("ext-analytic", func() {
			exp.FormatAnalyticStudy(w, exp.AnalyticStudy(ctx, 1e-5,
				[]int{64, 512, 4096, 32768, 262144, 1 << 20}))
		})
		w.Println()
	}
	if common.JSON {
		// The machine-readable index of what ran and how long each
		// experiment took (phase wall times in nanoseconds).
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Seed   uint64 `json:"seed"`
			Quick  bool   `json:"quick"`
			Phases any    `json:"phases"`
		}{*seed, *quick, ses.Phases()}); err != nil {
			fatalf("encode summary: %v", err)
		}
	}
	if err := ses.Close(); err != nil {
		fatalf("%v", err)
	}
	if err := w.Err(); err != nil {
		fatalf("writing output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-exp: "+format+"\n", args...)
	os.Exit(1)
}
