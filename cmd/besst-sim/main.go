// Command besst-sim runs one FT-aware full-system simulation: it
// develops models on the emulated Quartz (or loads a campaign CSV),
// builds the LULESH AppBEO for the requested scenario, and simulates it
// with BE-SST, reporting the Monte Carlo makespan distribution and
// checkpoint markers.
//
//	besst-sim -epr 10 -ranks 64 -steps 200 -scenario l1l2
//	besst-sim -epr 30 -ranks 1331 -scenario l1 -mode direct   # notional
//	besst-sim -mode des -trace results/trace.json -metrics results/
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/cli"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/resilience"
	"besst/internal/serve"
	"besst/internal/stats"
	"besst/internal/workflow"
)

// jsonSummary is the -json output: the run's makespan distribution,
// breakdown, and checkpoint markers.
type jsonSummary struct {
	App     string `json:"app"`
	Machine string `json:"machine"`
	// Run is the canonical serialized run configuration (schema_version
	// 1) — the same besst.RunSpec the besst-serve HTTP API accepts, so a
	// CLI summary can be replayed as a service request verbatim.
	Run          besst.RunSpec   `json:"run"`
	Mode         string          `json:"mode"`
	Replications int             `json:"replications"`
	Makespan     stats.Summary   `json:"makespan"`
	EventsPerRun uint64          `json:"events_per_run,omitempty"`
	CkptTimes    []float64       `json:"ckpt_times,omitempty"`
	Breakdown    besst.Breakdown `json:"breakdown"`
}

func main() {
	epr := flag.Int("epr", 10, "problem size (elements per rank edge)")
	ranks := flag.Int("ranks", 64, "MPI ranks (perfect cube, multiple of 8)")
	steps := flag.Int("steps", 200, "timesteps")
	scenario := flag.String("scenario", "l1", "fault-tolerance scenario: noft | l1 | l1l2")
	period := flag.Int("period", 40, "checkpoint period in timesteps")
	mode := flag.String("mode", "des", "execution mode: des | direct")
	mc := flag.Int("mc", 10, "Monte Carlo replications")
	samples := flag.Int("samples", 10, "benchmark samples per combination for model development")
	campaignCSV := flag.String("campaign", "", "optional campaign CSV instead of fresh benchmarking")
	modelsPath := flag.String("models", "", "optional saved model bundle (besst-model -save) instead of fitting")
	appPath := flag.String("app", "", "optional AppBEO JSON spec to simulate instead of the LULESH builder")
	method := flag.String("method", "symreg", "modeling method: symreg | interp")
	common := cli.RegisterCommon(flag.CommandLine, 0)
	distFlags := cli.RegisterDist(flag.CommandLine)
	flag.Parse()

	out := cli.NewPrinter(os.Stdout)
	// Progress lines move to stderr under -json so stdout stays one
	// parseable document.
	progress := out
	if common.JSON {
		progress = cli.NewPrinter(os.Stderr)
	}
	ses, err := common.Begin("besst-sim")
	if err != nil {
		fatalf("%v", err)
	}

	sc, err := lulesh.ParseScenario(*scenario)
	if err != nil {
		fatalf("%v", err)
	}
	for i := range sc.Schedules {
		sc.Schedules[i].Period = *period
	}

	m, err := besst.ParseMode(*mode)
	if err != nil {
		fatalf("%v", err)
	}

	wfMethod := workflow.SymbolicRegression
	if *method == "interp" {
		wfMethod = workflow.Interpolation
	} else if *method != "symreg" {
		fatalf("unknown method %q", *method)
	}

	// -dist: ship the configuration as a self-contained campaign
	// request to a besst-worker fleet and print the merged result
	// document — byte-identical to what a local run (or besst-serve)
	// produces for the same request.
	if distFlags.Enabled() {
		if *campaignCSV != "" || *modelsPath != "" || *appPath != "" {
			fatalf("-dist builds a self-contained campaign request; -campaign, -models, and -app cannot combine with it")
		}
		req := serve.CampaignRequest{
			SchemaVersion: serve.RequestSchemaVersion,
			Kind:          serve.KindMonteCarlo,
			Trials:        *mc,
			// Workers stays 0: results are byte-identical for every
			// concurrency, so it must not enter the campaign identity.
			Run:   besst.RunSpec{SchemaVersion: 1, Mode: *mode, MonteCarlo: true, Seed: common.Seed, PerRankNoise: true},
			App:   &serve.AppSpec{EPR: *epr, Ranks: *ranks, Steps: *steps, Scenario: *scenario, Period: *period},
			Model: &serve.ModelSpec{Method: *method, Samples: *samples, Seed: common.Seed},
		}
		raw, err := json.Marshal(req)
		if err != nil {
			fatalf("marshal campaign request: %v", err)
		}
		doc, err := cli.RunDist(distFlags, cli.NewPrinter(os.Stderr), raw)
		if err != nil {
			fatalf("%v", err)
		}
		if _, err := out.Write(doc); err != nil {
			fatalf("writing output: %v", err)
		}
		if err := ses.Close(); err != nil {
			fatalf("%v", err)
		}
		return
	}

	em := groundtruth.NewQuartz()
	devDone := ses.Phase("develop-models")
	var models *workflow.Models
	if *modelsPath != "" {
		data, err := os.ReadFile(*modelsPath)
		if err != nil {
			fatalf("open models: %v", err)
		}
		models, err = workflow.Load(bytes.NewReader(data))
		if err != nil {
			fatalf("load models: %v", err)
		}
		progress.Printf("loaded %d models from %s\n", len(models.ByOp), *modelsPath)
	} else if *campaignCSV != "" {
		data, err := os.ReadFile(*campaignCSV)
		if err != nil {
			fatalf("open campaign: %v", err)
		}
		campaign, err := benchdata.ReadCSV(bytes.NewReader(data))
		if err != nil {
			fatalf("parse campaign: %v", err)
		}
		models = workflow.Develop(campaign, wfMethod, []string{"epr", "ranks"}, common.Seed)
	} else {
		progress.Printf("benchmarking and developing models (%s, %d samples/combination)...\n", wfMethod, *samples)
		models, _ = workflow.DevelopLuleshQuartz(em, *samples, wfMethod, common.Seed)
	}
	devDone()

	cfg := em.Cost.Config
	var app *beo.AppBEO
	if *appPath != "" {
		data, err := os.ReadFile(*appPath)
		if err != nil {
			fatalf("read app spec: %v", err)
		}
		app = &beo.AppBEO{}
		if err := json.Unmarshal(data, app); err != nil {
			fatalf("parse app spec: %v", err)
		}
	} else {
		app = lulesh.App(*epr, *ranks, *steps, sc, cfg)
	}
	machine := em.M
	arch := beo.NewArchBEO(machine, cfg.NodeSize)
	workflow.BindLulesh(arch, models)
	if err := arch.Validate(app); err != nil {
		fatalf("%v", err)
	}

	progress.Printf("simulating %s on %s (%s mode, %d MC replications)\n",
		app.Name, machine.Name, *mode, *mc)
	simDone := ses.Phase("simulate")
	opts := append(ses.RunOptions(), besst.WithMode(m), besst.WithPerRankNoise(true))
	var runs []*besst.Result
	if ses.CampaignEnabled() {
		cr, err := besst.CompileErr(app, arch)
		if err != nil {
			fatalf("%v", err)
		}
		hash := resilience.ConfigHash("besst-sim", app.Name, machine.Name, *mode, *mc,
			*epr, *ranks, *steps, *scenario, *period, common.Seed)
		all, rep, err := resilience.ReplicateResumable(cr, *mc, ses.Campaign(hash), opts...)
		if err != nil {
			fatalf("%v", err)
		}
		cli.ReportCampaign(progress, rep)
		for _, r := range all {
			if r != nil {
				runs = append(runs, r)
			}
		}
		if len(runs) == 0 {
			fatalf("every replication was quarantined; no results")
		}
	} else {
		runs = besst.Replicate(app, arch, *mc, opts...)
	}
	simDone()

	s := stats.Summarize(besst.Makespans(runs))
	if common.JSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonSummary{
			App: app.Name, Machine: machine.Name, Mode: *mode,
			Run:          besst.NewRunConfig(append(opts, besst.WithMonteCarlo(true))...).Spec(),
			Replications: *mc, Makespan: s,
			EventsPerRun: runs[0].Events,
			CkptTimes:    runs[0].CkptTimes,
			Breakdown:    runs[0].Breakdown,
		}); err != nil {
			fatalf("encode summary: %v", err)
		}
	} else {
		out.Printf("makespan: mean %.4gs  std %.3gs  min %.4gs  max %.4gs  (n=%d)\n",
			s.Mean, s.Std, s.Min, s.Max, s.N)
		if len(runs[0].CkptTimes) > 0 {
			out.Printf("checkpoint instances (first run): %d, completing at:", len(runs[0].CkptTimes))
			for _, t := range runs[0].CkptTimes {
				out.Printf(" %.4g", t)
			}
			out.Println()
		}
		if runs[0].Events > 0 {
			out.Printf("discrete events processed per run: %d\n", runs[0].Events)
		}
		bd := runs[0].Breakdown
		if bd.Total() > 0 {
			out.Printf("time breakdown (rank 0): compute %.1f%%  comm %.1f%%  checkpoint %.1f%%\n",
				100*bd.ComputeSec/bd.Total(), 100*bd.CommSec/bd.Total(), 100*bd.CkptSec/bd.Total())
		}
	}
	if err := ses.Close(); err != nil {
		fatalf("%v", err)
	}
	if err := out.Err(); err != nil {
		fatalf("writing output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-sim: "+format+"\n", args...)
	os.Exit(1)
}
