// Command besst-model fits performance models from a benchmarking-
// campaign CSV (produced by besst-bench) with either modeling method
// and reports per-op accuracy — the Model Development half of the
// BE-SST workflow as a standalone step.
//
//	besst-bench -o campaign.csv
//	besst-model -in campaign.csv -method symreg
//	besst-model -in campaign.csv -method interp -predict "epr=30,ranks=1331"
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"besst/internal/benchdata"
	"besst/internal/cli"
	"besst/internal/perfmodel"
	"besst/internal/workflow"
)

func main() {
	in := flag.String("in", "", "campaign CSV (required)")
	method := flag.String("method", "symreg", "modeling method: symreg | interp")
	vars := flag.String("vars", "epr,ranks", "model input variables, comma separated")
	predict := flag.String("predict", "", "optional prediction point, e.g. \"epr=30,ranks=1331\"")
	save := flag.String("save", "", "write the fitted model bundle as JSON to this path")
	common := cli.RegisterCommon(flag.CommandLine, 0)
	flag.Parse()

	if *in == "" {
		fatalf("-in is required")
	}
	out := cli.NewPrinter(os.Stdout)
	ses, err := common.Begin("besst-model")
	if err != nil {
		fatalf("%v", err)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fatalf("open: %v", err)
	}
	campaign, err := benchdata.ReadCSV(bytes.NewReader(data))
	if err != nil {
		fatalf("parse: %v", err)
	}

	var m workflow.Method
	switch *method {
	case "symreg":
		m = workflow.SymbolicRegression
	case "interp":
		m = workflow.Interpolation
	default:
		fatalf("unknown method %q", *method)
	}
	varNames := strings.Split(*vars, ",")
	for i := range varNames {
		varNames[i] = strings.TrimSpace(varNames[i])
	}

	fitDone := ses.Phase("fit-models")
	models := workflow.Develop(campaign, m, varNames, common.Seed)
	fitDone()
	if common.JSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(models.Reports); err != nil {
			fatalf("encode reports: %v", err)
		}
	} else {
		out.Printf("fitted %d models with %s\n", len(models.Reports), m)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatalf("create %s: %v", *save, err)
		}
		if err := models.Save(f); err != nil {
			fatalf("save: %v", err)
		}
		if err := f.Close(); err != nil {
			fatalf("close: %v", err)
		}
		out.Printf("saved model bundle to %s\n", *save)
	}
	if !common.JSON {
		for _, r := range models.Reports {
			out.Printf("  %-20s validation MAPE %6.2f%%", r.Op, r.ValidationMAPE)
			if r.Expression != "" {
				out.Printf("  train %5.2f%% test %5.2f%%\n    %s\n", r.TrainMAPE, r.TestMAPE, r.Expression)
			} else {
				out.Println()
			}
		}
	}

	if *predict != "" {
		p := perfmodel.Params{}
		for _, kv := range strings.Split(*predict, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				fatalf("bad -predict entry %q", kv)
			}
			v, err := strconv.ParseFloat(parts[1], 64)
			if err != nil {
				fatalf("bad -predict value %q: %v", parts[1], err)
			}
			p[parts[0]] = v
		}
		out.Printf("predictions at %s:\n", p.Key())
		for _, op := range campaign.Ops() {
			out.Printf("  %-20s %.6g s\n", op, models.ByOp[op].Predict(p))
		}
	}
	if err := ses.Close(); err != nil {
		fatalf("%v", err)
	}
	if err := out.Err(); err != nil {
		fatalf("writing output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-model: "+format+"\n", args...)
	os.Exit(1)
}
