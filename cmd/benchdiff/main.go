// Command benchdiff is the bench-regression gate: it diffs a freshly
// generated benchmark report against the committed baseline and exits
// nonzero when performance regressed.
//
// Default mode gates the hot-path report (besst-bench -hotpath): a
// benchmark fails when its ns/op exceeds the baseline by more than the
// tolerance (default 10%), or when its allocs/op exceeds the baseline
// at all — allocation counts on a warmed hot path are deterministic, so
// any growth is a real regression, not noise.
//
// With -parallel the gate compares parallel-scaling reports
// (besst-bench -parbench): ns/op growth beyond the tolerance fails, as
// does divergence between serial and parallel results, and — when both
// reports were recorded on hardware that can actually scale — parallel
// speedup dropping below the committed baseline.
//
//	benchdiff -base results/BENCH_hotpath_baseline.json -cur results/BENCH_hotpath.json
//	benchdiff -parallel -base results/BENCH_parallel.json -cur results/BENCH_parallel_fresh.json
package main

import (
	"flag"
	"fmt"
	"os"

	"besst/internal/benchdata"
)

func main() {
	parallel := flag.Bool("parallel", false, "compare parallel-scaling reports instead of hot-path reports")
	dseMode := flag.Bool("dse", false, "compare surrogate-search quality reports instead of hot-path reports")
	base := flag.String("base", "", "committed baseline report (default depends on mode)")
	cur := flag.String("cur", "", "freshly generated report to gate (default depends on mode)")
	tol := flag.Float64("tol", 10, "allowed ns/op growth in percent (also the speedup-floor slack in -parallel mode; allocs/op tolerance in hot-path mode is always zero)")
	gapSlack := flag.Float64("gap-slack", 0.5, "allowed optimality-gap growth in percentage points for -dse (full-sim count and warm identity tolerate nothing)")
	flag.Parse()

	if *parallel {
		runParallelDiff(orDefault(*base, "results/BENCH_parallel.json"),
			orDefault(*cur, "results/BENCH_parallel_fresh.json"), *tol)
		return
	}
	if *dseMode {
		runDSEDiff(orDefault(*base, "results/BENCH_dse_baseline.json"),
			orDefault(*cur, "results/BENCH_dse.json"), *gapSlack)
		return
	}
	runHotpathDiff(orDefault(*base, "results/BENCH_hotpath_baseline.json"),
		orDefault(*cur, "results/BENCH_hotpath.json"), *tol)
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func runHotpathDiff(base, cur string, tol float64) {
	baseRep, err := benchdata.LoadHotpath(base)
	if err != nil {
		fatalf("load baseline: %v", err)
	}
	curRep, err := benchdata.LoadHotpath(cur)
	if err != nil {
		fatalf("load current: %v", err)
	}

	for _, b := range baseRep.Benchmarks {
		c, ok := curRep.Lookup(b.Name)
		if !ok {
			continue // reported as a regression below
		}
		fmt.Fprintf(os.Stderr, "  %-26s ns/op %8d -> %8d   allocs/op %6d -> %6d\n",
			b.Name, b.NsPerOp, c.NsPerOp, b.AllocsPerOp, c.AllocsPerOp)
	}

	regs := benchdata.CompareHotpath(curRep, baseRep, tol)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: OK — no regressions vs %s (ns/op tolerance %.0f%%, allocs/op tolerance 0)\n",
			base, tol)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION: %s\n", r)
	}
	os.Exit(1)
}

func runParallelDiff(base, cur string, tol float64) {
	baseRep, err := benchdata.LoadParallel(base)
	if err != nil {
		fatalf("load baseline: %v", err)
	}
	curRep, err := benchdata.LoadParallel(cur)
	if err != nil {
		fatalf("load current: %v", err)
	}

	fmt.Fprintf(os.Stderr, "  baseline: gomaxprocs %d, %d CPUs, scaling valid %v; current: gomaxprocs %d, %d CPUs, scaling valid %v\n",
		baseRep.GOMAXPROCS, baseRep.NumCPU, baseRep.ScalingValid,
		curRep.GOMAXPROCS, curRep.NumCPU, curRep.ScalingValid)
	for _, b := range baseRep.Benchmarks {
		c, ok := curRep.Lookup(b.Name)
		if !ok {
			continue // reported as a regression below
		}
		fmt.Fprintf(os.Stderr, "  %-26s ns/op %12d -> %12d", b.Name, b.NsPerOp, c.NsPerOp)
		if b.SpeedupVsSerial > 0 || c.SpeedupVsSerial > 0 {
			fmt.Fprintf(os.Stderr, "   speedup %5.2fx -> %5.2fx", b.SpeedupVsSerial, c.SpeedupVsSerial)
		}
		fmt.Fprintln(os.Stderr)
	}

	regs := benchdata.CompareParallel(curRep, baseRep, tol)
	if len(regs) == 0 {
		suffix := "speedup floor enforced"
		if !(baseRep.ScalingValid && curRep.ScalingValid) {
			suffix = "speedup floor skipped: hardware cannot scale"
		}
		fmt.Fprintf(os.Stderr, "benchdiff: OK — no regressions vs %s (ns/op tolerance %.0f%%, %s)\n",
			base, tol, suffix)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION: %s\n", r)
	}
	os.Exit(1)
}

func runDSEDiff(base, cur string, gapSlack float64) {
	baseRep, err := benchdata.LoadDSE(base)
	if err != nil {
		fatalf("load baseline: %v", err)
	}
	curRep, err := benchdata.LoadDSE(cur)
	if err != nil {
		fatalf("load current: %v", err)
	}

	fmt.Fprintf(os.Stderr, "  full_sims %d/%d -> %d/%d   gap %.3f%% -> %.3f%%   warm hits %d -> %d   warm identical %v -> %v\n",
		baseRep.FullSims, baseRep.GridPoints, curRep.FullSims, curRep.GridPoints,
		baseRep.GapPct, curRep.GapPct, baseRep.MemoWarmHits, curRep.MemoWarmHits,
		baseRep.WarmIdentical, curRep.WarmIdentical)

	regs := benchdata.CompareDSE(curRep, baseRep, gapSlack)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: OK — no regressions vs %s (gap slack %.1f points, full-sim and warm-identity tolerance 0)\n",
			base, gapSlack)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION: %s\n", r)
	}
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
