// Command benchdiff is the bench-regression gate: it diffs a freshly
// generated hot-path benchmark report (besst-bench -hotpath) against
// the committed baseline and exits nonzero when performance regressed.
//
// A benchmark fails the gate when its ns/op exceeds the baseline by
// more than the tolerance (default 10%), or when its allocs/op exceeds
// the baseline at all — allocation counts on a warmed hot path are
// deterministic, so any growth is a real regression, not noise.
//
//	benchdiff -base results/BENCH_hotpath_baseline.json -cur results/BENCH_hotpath.json
package main

import (
	"flag"
	"fmt"
	"os"

	"besst/internal/benchdata"
)

func main() {
	base := flag.String("base", "results/BENCH_hotpath_baseline.json", "committed baseline report")
	cur := flag.String("cur", "results/BENCH_hotpath.json", "freshly generated report to gate")
	tol := flag.Float64("tol", 10, "allowed ns/op growth in percent (allocs/op tolerance is always zero)")
	flag.Parse()

	baseRep, err := benchdata.LoadHotpath(*base)
	if err != nil {
		fatalf("load baseline: %v", err)
	}
	curRep, err := benchdata.LoadHotpath(*cur)
	if err != nil {
		fatalf("load current: %v", err)
	}

	for _, b := range baseRep.Benchmarks {
		c, ok := curRep.Lookup(b.Name)
		if !ok {
			continue // reported as a regression below
		}
		fmt.Fprintf(os.Stderr, "  %-26s ns/op %8d -> %8d   allocs/op %6d -> %6d\n",
			b.Name, b.NsPerOp, c.NsPerOp, b.AllocsPerOp, c.AllocsPerOp)
	}

	regs := benchdata.CompareHotpath(curRep, baseRep, *tol)
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: OK — no regressions vs %s (ns/op tolerance %.0f%%, allocs/op tolerance 0)\n",
			*base, *tol)
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "benchdiff: REGRESSION: %s\n", r)
	}
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}
