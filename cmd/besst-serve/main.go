// Command besst-serve runs the BE-SST simulation service: a
// multi-tenant HTTP daemon exposing the versioned campaign API over
// the same compile/run pipeline the CLIs use.
//
//	besst-serve -addr 127.0.0.1:8321 -state results/serve
//	besst-serve -smoke -golden results/GOLDEN_serve_smoke.json
//
// Endpoints (see internal/serve and DESIGN.md):
//
//	POST /v1/campaigns             submit (or join/resume) a campaign
//	GET  /v1/campaigns/{id}        status; ?watch=1 streams NDJSON
//	GET  /v1/campaigns/{id}/result the byte-reproducible result document
//	GET  /v1/healthz               liveness + drain state
//	GET  /v1/statz                 queue/tenant/compile-cache counters
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"besst/internal/dist"
	"besst/internal/dse"
	"besst/internal/serve"
	"besst/internal/serveclient"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	state := flag.String("state", "", "checkpoint journal directory for drain-and-resume (empty: no journals)")
	workers := flag.Int("workers", 0, "default per-campaign replication workers (0: GOMAXPROCS)")
	cacheCap := flag.Int("cache-cap", 8, "compile cache capacity (artifacts)")
	maxQueued := flag.Int("max-queued", 16, "admission queue bound; beyond it POST answers 429")
	maxActive := flag.Int("max-active", 2, "concurrently running campaigns")
	maxTenant := flag.Int("max-tenant", 1, "per-tenant concurrently running campaigns")
	authToken := flag.String("auth-token", "", "shared bearer token required on every endpoint except /v1/healthz; empty disables auth")
	campaignTTL := flag.Duration("campaign-ttl", 0, "evict settled campaigns from the registry after this long (0: keep forever)")
	workersAddr := flag.String("workers-addr", "", "comma-separated besst-worker base URLs; campaigns execute on that fleet instead of in-process")
	distShards := flag.Int("dist-shards", 0, "index-range shards per campaign for -workers-addr (0: one per worker)")
	distReplicas := flag.Int("dist-replicas", 1, "functional-replication degree for -workers-addr")
	memoCap := flag.Int("memo-cap", 0, "cross-campaign design-point memo capacity (0: default)")
	memoJournal := flag.String("memo-journal", "", "append-only point-memo journal file; replayed on boot so the memo survives restarts")
	smoke := flag.Bool("smoke", false, "run the self-contained service smoke check and exit")
	smokeDSE := flag.Bool("smoke-dse", false, "run the surrogate-search + point-memo smoke check and exit")
	golden := flag.String("golden", "", "golden result document for -smoke")
	update := flag.Bool("update-golden", false, "rewrite the -smoke golden instead of diffing")
	flag.Parse()

	if *smoke {
		if err := serveclient.Smoke(os.Stdout, serveclient.SmokeConfig{Golden: *golden, Update: *update}); err != nil {
			fatalf("%v", err)
		}
		return
	}
	if *smokeDSE {
		if err := serveclient.SmokeDSE(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}

	var memo *dse.Memo
	if *memoJournal != "" {
		var err error
		if memo, err = dse.NewMemoJournal(*memoCap, *memoJournal); err != nil {
			fatalf("%v", err)
		}
		defer func() { _ = memo.Close() }()
	} else if *memoCap > 0 {
		memo = dse.NewMemo(*memoCap)
	}

	var backend serve.Backend
	if *workersAddr != "" {
		var urls []string
		for _, w := range strings.Split(*workersAddr, ",") {
			if w = strings.TrimSpace(w); w != "" {
				urls = append(urls, w)
			}
		}
		c, err := dist.NewCoordinator(dist.Config{
			Workers:   urls,
			Shards:    *distShards,
			Replicas:  *distReplicas,
			AuthToken: *authToken,
		})
		if err != nil {
			fatalf("%v", err)
		}
		backend = dist.ServeBackend(c)
		fmt.Fprintf(os.Stderr, "besst-serve executing campaigns on %d workers (shards=%d, replicas=%d)\n",
			len(urls), *distShards, *distReplicas)
	}

	srv := serve.NewServer(serve.Config{
		StateDir:     *state,
		Workers:      *workers,
		CacheCap:     *cacheCap,
		MaxQueued:    *maxQueued,
		MaxActive:    *maxActive,
		MaxPerTenant: *maxTenant,
		AuthToken:    *authToken,
		CampaignTTL:  *campaignTTL,
		Backend:      backend,
		Memo:         memo,
	})
	fmt.Fprintf(os.Stderr, "besst-serve listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-serve: "+format+"\n", args...)
	os.Exit(1)
}
