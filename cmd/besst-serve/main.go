// Command besst-serve runs the BE-SST simulation service: a
// multi-tenant HTTP daemon exposing the versioned campaign API over
// the same compile/run pipeline the CLIs use.
//
//	besst-serve -addr 127.0.0.1:8321 -state results/serve
//	besst-serve -smoke -golden results/GOLDEN_serve_smoke.json
//
// Endpoints (see internal/serve and DESIGN.md):
//
//	POST /v1/campaigns             submit (or join/resume) a campaign
//	GET  /v1/campaigns/{id}        status; ?watch=1 streams NDJSON
//	GET  /v1/campaigns/{id}/result the byte-reproducible result document
//	GET  /v1/healthz               liveness + drain state
//	GET  /v1/statz                 queue/tenant/compile-cache counters
package main

import (
	"flag"
	"fmt"
	"os"

	"besst/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	state := flag.String("state", "", "checkpoint journal directory for drain-and-resume (empty: no journals)")
	workers := flag.Int("workers", 0, "default per-campaign replication workers (0: GOMAXPROCS)")
	cacheCap := flag.Int("cache-cap", 8, "compile cache capacity (artifacts)")
	maxQueued := flag.Int("max-queued", 16, "admission queue bound; beyond it POST answers 429")
	maxActive := flag.Int("max-active", 2, "concurrently running campaigns")
	maxTenant := flag.Int("max-tenant", 1, "per-tenant concurrently running campaigns")
	smoke := flag.Bool("smoke", false, "run the self-contained service smoke check and exit")
	golden := flag.String("golden", "", "golden result document for -smoke")
	update := flag.Bool("update-golden", false, "rewrite the -smoke golden instead of diffing")
	flag.Parse()

	if *smoke {
		if err := serve.Smoke(os.Stdout, serve.SmokeConfig{Golden: *golden, Update: *update}); err != nil {
			fatalf("%v", err)
		}
		return
	}

	srv := serve.NewServer(serve.Config{
		StateDir:     *state,
		Workers:      *workers,
		CacheCap:     *cacheCap,
		MaxQueued:    *maxQueued,
		MaxActive:    *maxActive,
		MaxPerTenant: *maxTenant,
	})
	fmt.Fprintf(os.Stderr, "besst-serve listening on %s\n", *addr)
	if err := srv.ListenAndServe(*addr); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-serve: "+format+"\n", args...)
	os.Exit(1)
}
