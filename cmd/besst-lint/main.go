// Command besst-lint runs the repository's custom static-analysis pass
// (internal/lint) over the given package patterns and reports every
// violation of the simulator's determinism and DES invariants.
//
//	besst-lint ./...                     # everything (the make lint gate)
//	besst-lint -checks errcheck ./cmd/...
//	besst-lint -json ./internal/...      # machine-readable diagnostics
//	besst-lint -list                     # available checks
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"besst/internal/cli"
	"besst/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as a JSON array")
	listFlag := flag.Bool("list", false, "list available checks and exit")
	flag.Parse()

	out := cli.NewPrinter(os.Stdout)
	if *listFlag {
		for _, c := range lint.AllChecks() {
			out.Printf("%-22s %s\n", c.Name(), c.Doc())
		}
		finish(out, 0)
	}

	checks, err := lint.SelectChecks(*checksFlag)
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader("")
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.LoadPatterns(flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	diags := lint.Run(pkgs, checks)
	if *jsonFlag {
		if diags == nil {
			diags = []lint.Diagnostic{} // a clean run is [], not null
		}
		data, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fatalf("encode: %v", err)
		}
		out.Printf("%s\n", data)
	} else {
		for _, d := range diags {
			out.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "besst-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		finish(out, 1)
	}
	finish(out, 0)
}

// finish flushes the printer's recorded error, if any, and exits.
func finish(out *cli.Printer, code int) {
	if err := out.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "besst-lint: writing output: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-lint: "+format+"\n", args...)
	os.Exit(2)
}
