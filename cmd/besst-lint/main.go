// Command besst-lint runs the repository's custom static-analysis pass
// (internal/lint) over the given package patterns and reports every
// violation of the simulator's determinism, DES, concurrency, and
// allocation invariants. Nine checks run by default: the per-node
// walkers (nodeterminism, seeddiscipline, goroutinediscipline,
// errcheck, floateq) and the CFG/dataflow checks (hotalloc, atomicmix,
// goroutineleak, lockguard).
//
//	besst-lint ./...                     # everything (the make lint gate)
//	besst-lint -checks hotalloc,atomicmix ./internal/des
//	besst-lint -json ./internal/...      # machine-readable diagnostics
//	besst-lint -list                     # available checks
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"besst/internal/cli"
	"besst/internal/lint"
)

func main() {
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	listFlag := flag.Bool("list", false, "list available checks and exit")
	// -seed and -workers are accepted for flag uniformity across the
	// besst tools but have no effect on a lint run; -json switches the
	// diagnostics to a JSON array, and the profiling flags work as in
	// every other tool.
	common := cli.RegisterCommon(flag.CommandLine, 0)
	flag.Parse()

	out := cli.NewPrinter(os.Stdout)
	if *listFlag {
		for _, c := range lint.AllChecks() {
			out.Printf("%-22s %s\n", c.Name(), c.Doc())
		}
		finish(nil, out, 0)
	}

	ses, err := common.Begin("besst-lint")
	if err != nil {
		fatalf("%v", err)
	}
	checks, err := lint.SelectChecks(*checksFlag)
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader("")
	if err != nil {
		fatalf("%v", err)
	}
	loadDone := ses.Phase("load-packages")
	pkgs, err := loader.LoadPatterns(flag.Args())
	loadDone()
	if err != nil {
		fatalf("%v", err)
	}

	lintDone := ses.Phase("run-checks")
	diags := lint.Run(pkgs, checks)
	lintDone()
	if common.JSON {
		if diags == nil {
			diags = []lint.Diagnostic{} // a clean run is [], not null
		}
		data, err := json.MarshalIndent(diags, "", "  ")
		if err != nil {
			fatalf("encode: %v", err)
		}
		out.Printf("%s\n", data)
	} else {
		for _, d := range diags {
			out.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "besst-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		finish(ses, out, 1)
	}
	finish(ses, out, 0)
}

// finish flushes the observability session and the printer's recorded
// error, if any, and exits.
func finish(ses *cli.Session, out *cli.Printer, code int) {
	if ses != nil {
		if err := ses.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "besst-lint: %v\n", err)
			os.Exit(2)
		}
	}
	if err := out.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "besst-lint: writing output: %v\n", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-lint: "+format+"\n", args...)
	os.Exit(2)
}
