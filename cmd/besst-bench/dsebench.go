package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"besst/internal/benchdata"
	"besst/internal/dse"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/workflow"
)

// The -dse harness measures surrogate-search quality, not wall time:
// it sweeps a small grid exhaustively for ground truth, re-searches it
// under a fixed budget, and reports the optimality gap, the
// full-simulation count, and whether a memo-warm re-search reproduces
// the cold result byte-for-byte. The grid is small on purpose — truth
// requires the exhaustive sweep the search exists to avoid — and every
// number is a pure function of the pinned seed, so `make bench-dse`
// can gate on the report with zero noise tolerance.

const (
	dseBenchSeed    = 42
	dseBenchSamples = 5
	dseBenchSteps   = 20
	dseBenchMC      = 2
	dseBenchBudget  = 0.4
)

// dseBenchConfig is the shared grid for truth and search runs. The
// collector-free config is rebuilt per run so prepared sweeps never
// share mutable state.
func dseBenchConfig(workers int) dse.SweepConfig {
	return dse.NewSweepConfig(
		dse.WithEPRs(5, 10, 15, 20, 25),
		dse.WithRanks(8, 64, 216),
		dse.WithScenarios(lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2),
		dse.WithTimesteps(dseBenchSteps),
		dse.WithMCRuns(dseBenchMC),
		dse.WithSeed(dseBenchSeed+1),
		dse.WithConcurrency(workers),
	)
}

func runDSEBench(outPath string, workers int) {
	em := groundtruth.NewQuartz()
	models, _ := workflow.DevelopLuleshQuartz(em, dseBenchSamples, workflow.SymbolicRegression, dseBenchSeed)
	cfg := dseBenchConfig(workers)
	if err := cfg.Validate(); err != nil {
		fatalf("dse bench: %v", err)
	}
	bundle := fmt.Sprintf("bench|quartz|lulesh|symreg|samples=%d|seed=%d", dseBenchSamples, dseBenchSeed)

	// Ground truth: evaluate every design point exhaustively. Baseline
	// points coincide with grid points (noft at the anchor rank count
	// is part of the scenario product), so the minimum over all points
	// is the search objective's true optimum.
	truth := dse.PrepareSweep(models, em.M, em.Cost.Config.NodeSize, cfg)
	trueBest, trueIdx := 0.0, -1
	for i := 0; i < truth.NumPoints(); i++ {
		mean := truth.EvalPoint(i)
		if trueIdx < 0 || mean < trueBest {
			trueBest, trueIdx = mean, i
		}
	}

	// Cold search through a fresh memo, then a warm re-search through
	// the same memo on a freshly prepared sweep: the warm run must hit
	// the memo and reproduce the cold result bytes exactly.
	memo := dse.NewMemo(0)
	scfg := dse.SearchConfig{Budget: dseBenchBudget}
	cold := dse.PrepareSweep(models, em.M, em.Cost.Config.NodeSize, cfg)
	cold.AttachMemo(memo, bundle)
	coldRes, err := cold.Search(scfg)
	if err != nil {
		fatalf("dse bench: cold search: %v", err)
	}
	coldStats := memo.Stats()

	warm := dse.PrepareSweep(models, em.M, em.Cost.Config.NodeSize, cfg)
	warm.AttachMemo(memo, bundle)
	warmRes, err := warm.Search(scfg)
	if err != nil {
		fatalf("dse bench: warm search: %v", err)
	}
	warmStats := memo.Stats()

	coldDoc, err := json.Marshal(coldRes)
	if err != nil {
		fatalf("dse bench: marshal cold result: %v", err)
	}
	warmDoc, err := json.Marshal(warmRes)
	if err != nil {
		fatalf("dse bench: marshal warm result: %v", err)
	}

	bestIdx, ok := truth.PointIndex(coldRes.Best.EPR, coldRes.Best.Ranks, coldRes.Best.Scenario)
	if !ok {
		fatalf("dse bench: search best %s/%d/%d is not a grid point",
			coldRes.Best.Scenario, coldRes.Best.EPR, coldRes.Best.Ranks)
	}
	gap := 0.0
	if trueBest > 0 {
		gap = 100 * (coldRes.Best.MeanSec - trueBest) / trueBest
	}

	report := benchdata.DSEReport{
		SchemaVersion: benchdata.DSESchemaVersion,
		Seed:          dseBenchSeed,
		GridPoints:    truth.NumPoints(),
		BudgetFrac:    dseBenchBudget,
		FullSims:      coldRes.FullSims,
		Rounds:        coldRes.Rounds,
		GapPct:        gap,
		BestLabel:     truth.PointLabel(bestIdx),
		TrueBestLabel: truth.PointLabel(trueIdx),
		MemoWarmHits:  warmStats.Hits - coldStats.Hits,
		WarmIdentical: bytes.Equal(coldDoc, warmDoc),
	}

	if err := os.MkdirAll(filepath.Dir(outPath), 0o755); err != nil {
		fatalf("dse bench: %v", err)
	}
	f, err := os.Create(outPath)
	if err != nil {
		fatalf("dse bench: create %s: %v", outPath, err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fatalf("dse bench: write %s: %v", outPath, err)
	}
	if err := f.Close(); err != nil {
		fatalf("dse bench: close %s: %v", outPath, err)
	}
	fmt.Fprintf(os.Stderr,
		"dse bench: %d/%d points simulated in %d rounds, gap %.3f%% (best %s, true best %s), warm hits %d, warm identical %v -> %s\n",
		report.FullSims, report.GridPoints, report.Rounds, report.GapPct,
		report.BestLabel, report.TrueBestLabel, report.MemoWarmHits, report.WarmIdentical, outPath)
}
