// Command besst-bench runs the synthetic benchmarking campaign of the
// Model Development phase: it times the LULESH timestep function and
// the requested FTI checkpoint levels over the (epr, ranks) grid on the
// emulated Quartz and writes the samples as CSV (stdout or -o file,
// JSON with -json) for besst-model to fit.
//
//	besst-bench -samples 10 -o campaign.csv
//	besst-bench -machine vulcan -app cmtbone -o cmt.csv
//	besst-bench -parbench -cpuprofile results/bench.pprof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"besst/internal/benchdata"
	"besst/internal/cli"
	"besst/internal/fti"
	"besst/internal/groundtruth"
)

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	machineName := flag.String("machine", "quartz", "ground-truth machine: quartz | vulcan")
	app := flag.String("app", "lulesh", "application: lulesh | cmtbone")
	eprs := flag.String("epr", "5,10,15,20,25", "problem sizes (lulesh) or element counts (cmtbone)")
	ranks := flag.String("ranks", "8,64,216,512,1000", "rank counts")
	levels := flag.String("levels", "1,2", "FTI checkpoint levels to benchmark (lulesh only)")
	samples := flag.Int("samples", 10, "timing samples per parameter combination")
	out := flag.String("o", "", "output path (default stdout)")
	parbench := flag.Bool("parbench", false, "run the serial-vs-parallel simulator benchmark harness and write JSON instead of collecting a campaign")
	parbenchOut := flag.String("parbench-out", "results/BENCH_parallel.json", "output path for -parbench")
	hotpath := flag.Bool("hotpath", false, "run the allocation-sensitive hot-path benchmark harness and write JSON instead of collecting a campaign")
	hotpathOut := flag.String("hotpath-out", "results/BENCH_hotpath.json", "output path for -hotpath")
	hotpathPre := flag.String("hotpath-prepr", "results/BENCH_hotpath_prepr.json", "committed pre-optimization snapshot to report improvement factors against")
	dseBench := flag.Bool("dse", false, "run the surrogate-search quality harness (optimality gap vs exhaustive truth, memo warm/cold identity) and write JSON instead of collecting a campaign")
	dseOut := flag.String("dse-out", "results/BENCH_dse.json", "output path for -dse")
	// -workers keeps its historical default of 1: any other value
	// selects the per-combination seeded parallel campaign collector.
	common := cli.RegisterCommon(flag.CommandLine, 1)
	flag.Parse()

	ses, err := common.Begin("besst-bench")
	if err != nil {
		fatalf("%v", err)
	}

	if *parbench {
		runParBench(*parbenchOut, common.Workers, common.Seed)
		closeSession(ses)
		return
	}

	if *hotpath {
		runHotpath(*hotpathOut, *hotpathPre)
		closeSession(ses)
		return
	}

	if *dseBench {
		runDSEBench(*dseOut, common.Workers)
		closeSession(ses)
		return
	}

	var em *groundtruth.Emulator
	switch *machineName {
	case "quartz":
		em = groundtruth.NewQuartz()
	case "vulcan":
		em = groundtruth.NewVulcan()
	default:
		fatalf("unknown machine %q", *machineName)
	}

	eprList, err := parseIntList(*eprs)
	if err != nil {
		fatalf("-epr: %v", err)
	}
	rankList, err := parseIntList(*ranks)
	if err != nil {
		fatalf("-ranks: %v", err)
	}

	collectDone := ses.Phase("collect-campaign")
	var campaign *benchdata.Campaign
	switch *app {
	case "lulesh":
		levelList, err := parseIntList(*levels)
		if err != nil {
			fatalf("-levels: %v", err)
		}
		var fls []fti.Level
		for _, l := range levelList {
			fl := fti.Level(l)
			if !fl.Valid() {
				fatalf("invalid FTI level %d", l)
			}
			fls = append(fls, fl)
		}
		plan := benchdata.LuleshPlan{
			EPRs: eprList, Ranks: rankList, Levels: fls,
			SamplesPer: *samples, Seed: common.Seed,
		}
		if common.Workers == 1 {
			campaign = benchdata.CollectLulesh(em, plan)
		} else {
			campaign = benchdata.CollectLuleshParallel(em, plan, common.Workers)
		}
	case "cmtbone":
		campaign = benchdata.CollectCmtBone(em, eprList, rankList, *samples, common.Seed)
	default:
		fatalf("unknown app %q", *app)
	}
	collectDone()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("create %s: %v", *out, err)
		}
		w = f
	}
	if common.JSON {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(campaign); err != nil {
			fatalf("write JSON: %v", err)
		}
	} else {
		if err := campaign.WriteCSV(w); err != nil {
			fatalf("write CSV: %v", err)
		}
	}
	if w != os.Stdout {
		if err := w.Close(); err != nil {
			fatalf("close %s: %v", *out, err)
		}
	}
	closeSession(ses)
	fmt.Fprintf(os.Stderr, "collected %d samples across %d ops on %s\n",
		len(campaign.Samples), len(campaign.Ops()), em.M.Name)
}

// closeSession flushes the observability session (profiles, metrics).
func closeSession(ses *cli.Session) {
	if err := ses.Close(); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-bench: "+format+"\n", args...)
	os.Exit(1)
}
