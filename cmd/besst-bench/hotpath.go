package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"

	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/des"
	"besst/internal/dse"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/workflow"
)

// The -hotpath harness measures the allocation-sensitive simulator
// benchmarks — raw DES event dispatch plus the two macro tiers — with
// testing.Benchmark and writes the machine-readable report that `make
// bench-compare` diffs against the committed baseline. The benchmarks
// mirror the root-package BenchmarkDESDispatch / BenchmarkMonteCarloDirect /
// BenchmarkOverheadSweep definitions (re-implemented here because a main
// package cannot import the repository root's external test file).

// hotHop forwards a decrementing counter around a ring with no handler
// work, so measured time is pure engine overhead.
type hotHop struct{}

func (hotHop) HandleEvent(ctx *des.Context, ev des.Event) {
	if n := ev.Payload.A; n > 0 {
		ctx.Send("next", 0, des.Payload{A: n - 1})
	}
}

const hotRingNodes = 64

func hotRing(register func(des.Component) des.ComponentID,
	connect func(des.ComponentID, string, des.ComponentID, string, des.Time)) des.ComponentID {
	ids := make([]des.ComponentID, hotRingNodes)
	for i := range ids {
		ids[i] = register(hotHop{})
	}
	for i := range ids {
		connect(ids[i], "next", ids[(i+1)%hotRingNodes], "next", 1)
	}
	return ids[0]
}

// benchDispatchSequential delivers b.N events through the sequential
// engine; one op is one delivered event.
func benchDispatchSequential(b *testing.B) {
	e := des.NewEngine()
	first := hotRing(e.Register, e.Connect)
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleAt(0, first, des.Payload{A: int64(b.N)})
	e.Run(0)
}

// benchDispatchParallel drives two independent rings pinned to two
// partitions (intra-partition dispatch, wide lookahead).
func benchDispatchParallel(b *testing.B) {
	e := des.NewParallelEngine(2, 1000)
	part := 0
	register := func(c des.Component) des.ComponentID { return e.RegisterIn(part, c) }
	firstA := hotRing(register, e.Connect)
	part = 1
	firstB := hotRing(register, e.Connect)
	b.ReportAllocs()
	b.ResetTimer()
	e.ScheduleAt(0, firstA, des.Payload{A: int64(b.N / 2)})
	e.ScheduleAt(0, firstB, des.Payload{A: int64(b.N / 2)})
	e.Run(0)
}

func runHotpath(outPath, basePath string) {
	fmt.Fprintf(os.Stderr, "besst-bench: hotpath benchmarks (GOMAXPROCS %d)\n", runtime.GOMAXPROCS(0))
	// Everything below deliberately hardcodes the root bench harness's
	// parameters (symreg models, 8 samples, seeds 42/43) rather than the
	// CLI seed: the numbers must be directly comparable to the
	// BenchmarkMonteCarloDirect / BenchmarkOverheadSweep measurements the
	// committed baselines were taken from, and table-backed models would
	// shift both the constant factors and the allocation profile.
	em := groundtruth.NewQuartz()
	models, _ := workflow.DevelopLuleshQuartz(em, 8, workflow.SymbolicRegression, 42)

	// Macro tier 1: Monte Carlo replication over one compiled run
	// (Direct mode, serial), mirroring BenchmarkMonteCarloDirect/serial.
	const mcN = 32
	app := lulesh.App(15, 216, 60, lulesh.ScenarioL1L2, em.Cost.Config)
	arch := beo.NewArchBEO(em.M, em.Cost.Config.NodeSize)
	workflow.BindLulesh(arch, models)
	cr := besst.Compile(app, arch)
	mcOpts := []besst.Option{
		besst.WithMode(besst.Direct), besst.WithPerRankNoise(true),
		besst.WithSeed(42), besst.WithConcurrency(1),
	}

	// Macro tier 2: the DSE overhead sweep (serial), mirroring
	// BenchmarkOverheadSweep/serial.
	sweep := dse.SweepConfig{
		EPRs:      []int{10, 15},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2},
		Timesteps: 40,
		MCRuns:    3,
		Seed:      43,
		Workers:   1,
	}

	report := benchdata.HotpathReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchmarks: []benchdata.HotpathEntry{
			hotEntry("DESDispatch/sequential", testing.Benchmark(benchDispatchSequential)),
			hotEntry("DESDispatch/parallel-2", testing.Benchmark(benchDispatchParallel)),
			hotEntry("MonteCarloDirect/serial", benchLoop(func() { cr.Replicate(mcN, mcOpts...) })),
			hotEntry("OverheadSweep/serial", benchLoop(func() {
				dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, sweep)
			})),
		},
	}

	// Replace the macro tiers' b.N-averaged allocation counts with
	// deterministic measurements (see stableAllocs); their timings keep
	// the testing.Benchmark numbers above.
	report.Benchmarks[2].AllocsPerOp = stableAllocs(func() { cr.Replicate(mcN, mcOpts...) })
	report.Benchmarks[3].AllocsPerOp = stableAllocs(func() {
		dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, sweep)
	})

	for _, b := range report.Benchmarks {
		fmt.Fprintf(os.Stderr, "  %-26s %12d ns/op %9d B/op %7d allocs/op\n",
			b.Name, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}

	// When the committed pre-optimization snapshot is present, print the
	// improvement factors it documents.
	if base, err := benchdata.LoadHotpath(basePath); err == nil {
		for _, b := range report.Benchmarks {
			if old, ok := base.Lookup(b.Name); ok && b.NsPerOp > 0 {
				fmt.Fprintf(os.Stderr, "  %-26s vs pre-PR: %.2fx time, %dx allocs (%d -> %d)\n",
					b.Name, float64(old.NsPerOp)/float64(b.NsPerOp),
					allocFactor(old.AllocsPerOp, b.AllocsPerOp), old.AllocsPerOp, b.AllocsPerOp)
			}
		}
	}

	if dir := filepath.Dir(outPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatalf("mkdir %s: %v", dir, err)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", outPath, err)
	}
	fmt.Fprintf(os.Stderr, "besst-bench: wrote %s\n", outPath)
}

func hotEntry(name string, r testing.BenchmarkResult) benchdata.HotpathEntry {
	return benchdata.HotpathEntry{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// stableAllocs measures allocs/op deterministically for the macro-tier
// closures. testing.Benchmark's allocs/op folds one-time lazy inits and
// GC-driven sync.Pool refills into a b.N-dependent average, which
// wobbles the rounded count by ±1-2 between runs — fatal under
// benchdiff's zero-tolerance allocation gate. Here a warmup call
// performs every lazy init and fills the pools, then the garbage
// collector is paused so no pool is cleared mid-measurement, making the
// per-op count an exact property of the code path.
func stableAllocs(fn func()) int64 {
	fn() // warmup: lazy model state, pool fills, one-time runtime inits
	runtime.GC()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	const iters = 3
	for i := 0; i < iters; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return int64((after.Mallocs - before.Mallocs) / iters)
}

func allocFactor(old, cur int64) int64 {
	if cur <= 0 {
		return old // zero allocs: report the eliminated count as the factor floor
	}
	return old / cur
}
