package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/des"
	"besst/internal/dse"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/par"
	"besst/internal/workflow"
)

// The -parbench harness measures the serial and parallel execution
// paths of the three hot tiers — Monte Carlo replication (Direct mode),
// the DSE overhead sweep, and the adaptive parallel DES engine on the
// ablation ring workload — with testing.Benchmark, verifies the
// parallel paths produce identical results, and writes a
// benchdata.ParallelReport consumed by `benchdiff -parallel`.
//
// GOMAXPROCS is pinned to at least max(4, workers) before measuring:
// the committed snapshot was once recorded with gomaxprocs 1, which
// made every "speedup" a meaningless ~1.0x. Pinning alone cannot
// conjure cores, so the report also records NumCPU and a ScalingValid
// verdict — on hardware without enough CPUs the harness still measures
// honestly but refuses to certify the numbers as scaling evidence, and
// the benchdiff gate degrades to its ns/op tolerance.

func benchLoop(fn func()) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
}

func runParBench(outPath string, workers int, seed uint64) {
	w := par.Workers(workers)
	target := w
	if target < 4 {
		target = 4
	}
	if runtime.GOMAXPROCS(0) < target {
		runtime.GOMAXPROCS(target)
	}
	numCPU := runtime.NumCPU()
	scalingValid := w > 1 && numCPU >= w
	em := groundtruth.NewQuartz()
	fmt.Fprintf(os.Stderr, "besst-bench: parbench with %d workers (GOMAXPROCS %d, %d CPUs)\n",
		w, runtime.GOMAXPROCS(0), numCPU)
	if !scalingValid {
		fmt.Fprintf(os.Stderr, "besst-bench: WARNING: %d CPUs cannot exhibit %d-way speedup; recording scaling_valid=false\n",
			numCPU, w)
	}
	models, _ := workflow.DevelopLuleshQuartz(em, 5, workflow.Interpolation, seed)

	// Tier 1: Monte Carlo replication over one compiled run.
	const mcN = 32
	app := lulesh.App(15, 216, 60, lulesh.ScenarioL1L2, em.Cost.Config)
	arch := beo.NewArchBEO(em.M, em.Cost.Config.NodeSize)
	workflow.BindLulesh(arch, models)
	cr := besst.Compile(app, arch)
	opts := []besst.Option{
		besst.WithMode(besst.Direct), besst.WithPerRankNoise(true), besst.WithSeed(seed),
	}
	serialOpts := append(opts[:len(opts):len(opts)], besst.WithConcurrency(1))
	parallelOpts := append(opts[:len(opts):len(opts)], besst.WithConcurrency(w))

	identical := identicalMakespans(
		besst.Makespans(cr.Replicate(mcN, serialOpts...)),
		besst.Makespans(cr.Replicate(mcN, parallelOpts...)))

	mcSerial := benchLoop(func() { cr.Replicate(mcN, serialOpts...) })
	mcParallel := benchLoop(func() { cr.Replicate(mcN, parallelOpts...) })

	// Tier 2: DSE overhead sweep.
	sweep := dse.SweepConfig{
		EPRs:      []int{10, 15},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2},
		Timesteps: 40,
		MCRuns:    3,
		Seed:      seed + 1,
	}
	serialSweep, parallelSweep := sweep, sweep
	serialSweep.Workers = 1
	parallelSweep.Workers = w
	identical = identical && identicalCells(
		dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, serialSweep),
		dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, parallelSweep))

	swSerial := benchLoop(func() { dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, serialSweep) })
	swParallel := benchLoop(func() { dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, parallelSweep) })

	// Tier 3: the adaptive parallel DES engine on the ablation workload
	// (independent rings, one per partition cluster, non-trivial handler
	// work) — the tier the ≥2x speedup acceptance gate watches.
	desParts := w
	if desParts < 2 {
		desParts = 2
	}
	if desParts > desRings {
		desParts = desRings
	}
	seqEnd, seqN := runDESAblation(1)
	parEnd, parN := runDESAblation(desParts)
	rebEngine, rebFirst := buildRebalancedDES(desParts)
	rebEnd, rebN := runWarmDES(rebEngine, rebFirst)
	identical = identical && seqEnd == parEnd && seqN == parN &&
		seqEnd == rebEnd && seqN == rebN

	desSerial := benchLoop(func() { runDESAblation(1) })
	desParallel := benchLoop(func() { runDESAblation(desParts) })
	desRebalanced := benchLoop(func() { runWarmDES(rebEngine, rebFirst) })
	rebEngine.Close()

	report := benchdata.ParallelReport{
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           numCPU,
		Workers:          w,
		MCReplications:   mcN,
		ScalingValid:     scalingValid,
		IdenticalResults: identical,
		Benchmarks: []benchdata.ParallelEntry{
			entry("MonteCarloDirect/serial", 1, mcSerial, 0),
			entry("MonteCarloDirect/parallel", w, mcParallel, speedup(mcSerial, mcParallel)),
			entry("OverheadSweep/serial", 1, swSerial, 0),
			entry("OverheadSweep/parallel", w, swParallel, speedup(swSerial, swParallel)),
			entry("DESAblation/serial", 1, desSerial, 0),
			entry("DESAblation/parallel", desParts, desParallel, speedup(desSerial, desParallel)),
			entry("DESAblation/rebalanced", desParts, desRebalanced, speedup(desSerial, desRebalanced)),
		},
	}
	if !identical {
		fmt.Fprintln(os.Stderr, "besst-bench: WARNING: parallel results diverge from serial results")
	}

	if dir := filepath.Dir(outPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatalf("mkdir %s: %v", dir, err)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", outPath, err)
	}
	for _, b := range report.Benchmarks {
		fmt.Fprintf(os.Stderr, "  %-28s %12d ns/op %9d allocs/op", b.Name, b.NsPerOp, b.AllocsPerOp)
		if b.SpeedupVsSerial > 0 {
			fmt.Fprintf(os.Stderr, "  %.2fx vs serial", b.SpeedupVsSerial)
		}
		fmt.Fprintln(os.Stderr)
	}
	fmt.Fprintf(os.Stderr, "besst-bench: wrote %s (identical results: %v, scaling valid: %v)\n",
		outPath, identical, scalingValid)
}

// DES ablation workload, mirroring BenchmarkAblationParallelDES in the
// root bench harness: independent communication rings whose events
// carry synthetic handler work standing in for BE model polls.
// desRingLat is strictly below desLookahead so each ring is one
// sub-lookahead cluster: Rebalance moves rings whole instead of
// splitting them across partitions (which would force cross traffic
// every window).
const (
	desRings     = 8
	desRingNodes = 8
	desHops      = 2000
	desRingLat   = des.Time(50)
	desLookahead = des.Time(100)
)

// parHop forwards a decrementing counter around its ring with synthetic
// handler work (the LCG stands in for a model poll).
type parHop struct{}

func (parHop) HandleEvent(ctx *des.Context, ev des.Event) {
	if n := ev.Payload.A; n > 0 {
		acc := uint64(n)
		for i := 0; i < 2000; i++ {
			acc = acc*6364136223846793005 + 1442695040888963407
		}
		if acc == 0 {
			panic("unreachable")
		}
		ctx.Send("next", 0, des.Payload{A: n - 1})
	}
}

// runDESAblation builds and runs the ring workload on the sequential
// engine (parts == 1) or the parallel engine, returning the end time
// and processed-event count so the caller can assert serial/parallel
// equivalence.
func runDESAblation(parts int) (des.Time, uint64) {
	if parts == 1 {
		e := des.NewEngine()
		first := buildDESRings(e.Register, e.Connect)
		for _, id := range first {
			e.ScheduleAt(0, id, des.Payload{A: desHops})
		}
		end := e.Run(0)
		return end, e.Processed()
	}
	e := des.NewParallelEngine(parts, desLookahead)
	defer e.Close()
	count := 0
	register := func(c des.Component) des.ComponentID {
		id := e.RegisterIn((count/desRingNodes)%parts, c)
		count++
		return id
	}
	first := buildDESRings(register, e.Connect)
	for _, id := range first {
		e.ScheduleAt(0, id, des.Payload{A: desHops})
	}
	end := e.Run(0)
	return end, e.Processed()
}

// buildRebalancedDES exercises the stall-aware reassignment path end to
// end: the rings start crammed into partition 0, a warm-up run measures
// the per-component loads, and Rebalance must spread them before the
// engine is handed to the timed loop. The caller owns Close.
func buildRebalancedDES(parts int) (*des.ParallelEngine, []des.ComponentID) {
	e := des.NewParallelEngine(parts, desLookahead)
	register := func(c des.Component) des.ComponentID {
		return e.RegisterIn(0, c) // skewed start: everything on one partition
	}
	first := buildDESRings(register, e.Connect)
	for _, id := range first {
		e.ScheduleAt(0, id, des.Payload{A: desHops})
	}
	e.Run(0) // measure per-component loads under the skewed layout
	e.Reset()
	e.Rebalance()
	return e, first
}

// runWarmDES is one timed op on a kept engine: Reset, reschedule, Run.
func runWarmDES(e *des.ParallelEngine, first []des.ComponentID) (des.Time, uint64) {
	e.Reset()
	for _, id := range first {
		e.ScheduleAt(0, id, des.Payload{A: desHops})
	}
	end := e.Run(0)
	return end, e.Processed()
}

func buildDESRings(register func(des.Component) des.ComponentID,
	connect func(des.ComponentID, string, des.ComponentID, string, des.Time)) []des.ComponentID {
	var first []des.ComponentID
	for g := 0; g < desRings; g++ {
		ids := make([]des.ComponentID, desRingNodes)
		for i := range ids {
			ids[i] = register(parHop{})
		}
		for i := range ids {
			connect(ids[i], "next", ids[(i+1)%desRingNodes], "next", desRingLat)
		}
		first = append(first, ids[0])
	}
	return first
}

func entry(name string, workers int, r testing.BenchmarkResult, speedup float64) benchdata.ParallelEntry {
	return benchdata.ParallelEntry{
		Name:            name,
		Workers:         workers,
		NsPerOp:         r.NsPerOp(),
		AllocsPerOp:     r.AllocsPerOp(),
		SpeedupVsSerial: speedup,
	}
}

func speedup(serial, parallel testing.BenchmarkResult) float64 {
	if parallel.NsPerOp() <= 0 {
		return 0
	}
	return float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
}

func identicalMakespans(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floateq the serial-vs-parallel gate asserts bit-identical replication
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func identicalCells(a, b []dse.Cell) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
