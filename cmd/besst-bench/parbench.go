package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/dse"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/par"
	"besst/internal/workflow"
)

// The -parbench harness measures the serial and parallel execution
// paths of the two hot tiers — Monte Carlo replication (Direct mode)
// and the DSE overhead sweep — with testing.Benchmark, verifies the two
// paths produce identical results, and writes a machine-readable JSON
// report. Speedups scale with available cores; on a single-core runner
// they hover around 1x by construction.

type parBenchEntry struct {
	Name            string  `json:"name"`
	Workers         int     `json:"workers"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

type parBenchReport struct {
	GOMAXPROCS       int             `json:"gomaxprocs"`
	Workers          int             `json:"workers"`
	MCReplications   int             `json:"mc_replications"`
	IdenticalResults bool            `json:"identical_results"`
	Benchmarks       []parBenchEntry `json:"benchmarks"`
}

func benchLoop(fn func()) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
}

func runParBench(outPath string, workers int, seed uint64) {
	w := par.Workers(workers)
	em := groundtruth.NewQuartz()
	fmt.Fprintf(os.Stderr, "besst-bench: parbench with %d workers (GOMAXPROCS %d)\n",
		w, runtime.GOMAXPROCS(0))
	models, _ := workflow.DevelopLuleshQuartz(em, 5, workflow.Interpolation, seed)

	// Tier 1: Monte Carlo replication over one compiled run.
	const mcN = 32
	app := lulesh.App(15, 216, 60, lulesh.ScenarioL1L2, em.Cost.Config)
	arch := beo.NewArchBEO(em.M, em.Cost.Config.NodeSize)
	workflow.BindLulesh(arch, models)
	cr := besst.Compile(app, arch)
	opts := []besst.Option{
		besst.WithMode(besst.Direct), besst.WithPerRankNoise(true), besst.WithSeed(seed),
	}
	serialOpts := append(opts[:len(opts):len(opts)], besst.WithConcurrency(1))
	parallelOpts := append(opts[:len(opts):len(opts)], besst.WithConcurrency(w))

	identical := identicalMakespans(
		besst.Makespans(cr.Replicate(mcN, serialOpts...)),
		besst.Makespans(cr.Replicate(mcN, parallelOpts...)))

	mcSerial := benchLoop(func() { cr.Replicate(mcN, serialOpts...) })
	mcParallel := benchLoop(func() { cr.Replicate(mcN, parallelOpts...) })

	// Tier 2: DSE overhead sweep.
	sweep := dse.SweepConfig{
		EPRs:      []int{10, 15},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2},
		Timesteps: 40,
		MCRuns:    3,
		Seed:      seed + 1,
	}
	serialSweep, parallelSweep := sweep, sweep
	serialSweep.Workers = 1
	parallelSweep.Workers = w
	identical = identical && identicalCells(
		dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, serialSweep),
		dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, parallelSweep))

	swSerial := benchLoop(func() { dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, serialSweep) })
	swParallel := benchLoop(func() { dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, parallelSweep) })

	report := parBenchReport{
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		Workers:          w,
		MCReplications:   mcN,
		IdenticalResults: identical,
		Benchmarks: []parBenchEntry{
			entry("MonteCarloDirect/serial", 1, mcSerial, 0),
			entry("MonteCarloDirect/parallel", w, mcParallel, speedup(mcSerial, mcParallel)),
			entry("OverheadSweep/serial", 1, swSerial, 0),
			entry("OverheadSweep/parallel", w, swParallel, speedup(swSerial, swParallel)),
		},
	}
	if !identical {
		fmt.Fprintln(os.Stderr, "besst-bench: WARNING: parallel results diverge from serial results")
	}

	if dir := filepath.Dir(outPath); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatalf("mkdir %s: %v", dir, err)
		}
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		fatalf("write %s: %v", outPath, err)
	}
	for _, b := range report.Benchmarks {
		fmt.Fprintf(os.Stderr, "  %-28s %12d ns/op %9d allocs/op", b.Name, b.NsPerOp, b.AllocsPerOp)
		if b.SpeedupVsSerial > 0 {
			fmt.Fprintf(os.Stderr, "  %.2fx vs serial", b.SpeedupVsSerial)
		}
		fmt.Fprintln(os.Stderr)
	}
	fmt.Fprintf(os.Stderr, "besst-bench: wrote %s (identical results: %v)\n", outPath, identical)
}

func entry(name string, workers int, r testing.BenchmarkResult, speedup float64) parBenchEntry {
	return parBenchEntry{
		Name:            name,
		Workers:         workers,
		NsPerOp:         r.NsPerOp(),
		AllocsPerOp:     r.AllocsPerOp(),
		SpeedupVsSerial: speedup,
	}
}

func speedup(serial, parallel testing.BenchmarkResult) float64 {
	if parallel.NsPerOp() <= 0 {
		return 0
	}
	return float64(serial.NsPerOp()) / float64(parallel.NsPerOp())
}

func identicalMakespans(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//lint:ignore floateq the serial-vs-parallel gate asserts bit-identical replication
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func identicalCells(a, b []dse.Cell) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
