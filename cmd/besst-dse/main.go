// Command besst-dse sweeps the fault-tolerance design space and prints
// the Co-Design phase outputs: the Fig 9-style overhead tables, the
// FT-level ranking at a chosen design point, and the pruning report
// flagging where the models diverge from the benchmarks (the regions
// the paper routes to direct runs or fine-grained simulators).
//
//	besst-dse
//	besst-dse -threshold 10 -epr 15 -ranks 216
//	besst-dse -json -metrics results/
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"besst/internal/besst"
	"besst/internal/cli"
	"besst/internal/dse"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/resilience"
	"besst/internal/serve"
	"besst/internal/workflow"
)

// jsonReport is the -json output: every sweep cell, the FT-level
// ranking at the chosen design point, and the pruning report. Search
// is present only under -search.
type jsonReport struct {
	Cells   []dse.Cell       `json:"cells"`
	Ranking []dse.Cell       `json:"ranking"`
	Pruning []dse.Divergence `json:"pruning"`
	Search  *searchSummary   `json:"search,omitempty"`
}

// searchSummary mirrors serve.SearchSummary plus the CLI's memo
// counters.
type searchSummary struct {
	Budget     float64       `json:"budget"`
	GridPoints int           `json:"grid_points"`
	FullSims   int           `json:"full_sims"`
	Rounds     int           `json:"rounds"`
	Best       dse.Cell      `json:"best"`
	Memo       dse.MemoStats `json:"memo"`
}

func main() {
	samples := flag.Int("samples", 10, "benchmark samples per combination")
	steps := flag.Int("steps", 200, "timesteps per simulated run")
	mc := flag.Int("mc", 5, "Monte Carlo replications per design point")
	threshold := flag.Float64("threshold", 15, "pruning threshold, percent divergence")
	epr := flag.Int("epr", 15, "design point for FT-level ranking: problem size")
	ranks := flag.Int("ranks", 216, "design point for FT-level ranking: ranks")
	search := flag.Bool("search", false, "surrogate-guided sweep: fully simulate only a budgeted subset of the grid, fill the rest from per-scenario surrogates")
	budget := flag.Float64("budget", 0.4, "fraction of the grid -search may fully simulate (0 < budget <= 1)")
	memoPath := flag.String("memo", "", "append-only design-point memo journal for -search; replayed on boot so repeat runs skip simulated points")
	common := cli.RegisterCommon(flag.CommandLine, 0)
	distFlags := cli.RegisterDist(flag.CommandLine)
	flag.Parse()

	out := cli.NewPrinter(os.Stdout)
	ses, err := common.Begin("besst-dse")
	if err != nil {
		fatalf("%v", err)
	}
	if *search && distFlags.Enabled() {
		fatalf("-search runs in-process: adaptive rounds have no static shard space to distribute (drop -dist)")
	}
	if *search && ses.CampaignEnabled() {
		fatalf("-search does not use campaign checkpoints; its persistence is the -memo journal (drop -state)")
	}

	// -dist: run the overhead sweep as a dse_sweep campaign on a
	// besst-worker fleet and print the merged result document. The
	// pruning report needs the local benchmark campaign, so it is
	// skipped — run without -dist for it.
	if distFlags.Enabled() {
		req := serve.CampaignRequest{
			SchemaVersion: serve.RequestSchemaVersion,
			Kind:          serve.KindSweep,
			// Seed+1 mirrors the local path's dse.WithSeed(common.Seed+1).
			Run:   besst.RunSpec{SchemaVersion: 1, Seed: common.Seed + 1},
			Model: &serve.ModelSpec{Method: "symreg", Samples: *samples, Seed: common.Seed},
			Sweep: &serve.SweepSpec{
				EPRs:      []int{10, 15, 20, 25},
				Ranks:     []int{64, 216, 1000},
				Scenarios: []string{"noft", "l1", "l1l2"},
				Timesteps: *steps,
				MCRuns:    *mc,
			},
		}
		raw, err := json.Marshal(req)
		if err != nil {
			fatalf("marshal campaign request: %v", err)
		}
		progress := cli.NewPrinter(os.Stderr)
		progress.Printf("dist: pruning report skipped (needs the local benchmark campaign)\n")
		doc, err := cli.RunDist(distFlags, progress, raw)
		if err != nil {
			fatalf("%v", err)
		}
		if _, err := out.Write(doc); err != nil {
			fatalf("writing output: %v", err)
		}
		if err := ses.Close(); err != nil {
			fatalf("%v", err)
		}
		return
	}
	em := groundtruth.NewQuartz()
	if !common.JSON {
		out.Printf("developing models (%d samples/combination)...\n", *samples)
	}
	devDone := ses.Phase("develop-models")
	models, campaign := workflow.DevelopLuleshQuartz(em, *samples, workflow.SymbolicRegression, common.Seed)
	devDone()

	sweepDone := ses.Phase("overhead-sweep")
	// Built through the same functional-option constructor and Validate
	// path besst-serve uses for sweep requests.
	sweepCfg := dse.NewSweepConfig(
		dse.WithEPRs(10, 15, 20, 25),
		dse.WithRanks(64, 216, 1000),
		dse.WithScenarios(lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2),
		dse.WithTimesteps(*steps),
		dse.WithMCRuns(*mc),
		dse.WithSeed(common.Seed+1),
		dse.WithConcurrency(common.Workers),
		dse.WithCollector(ses.SweepCollector()),
	)
	if err := sweepCfg.Validate(); err != nil {
		fatalf("%v", err)
	}
	var cells []dse.Cell
	var summary *searchSummary
	if *search {
		memo := dse.NewMemo(0)
		if *memoPath != "" {
			if memo, err = dse.NewMemoJournal(0, *memoPath); err != nil {
				fatalf("%v", err)
			}
		}
		// The bundle string keys memoized means to the exact modeling
		// pipeline; any flag that changes model fits must appear here.
		bundle := fmt.Sprintf("cli|quartz|lulesh|symreg|samples=%d|seed=%d", *samples, common.Seed)
		prepared := dse.PrepareSweep(models, em.M, em.Cost.Config.NodeSize, sweepCfg)
		prepared.AttachMemo(memo, bundle)
		res, serr := prepared.Search(dse.SearchConfig{Budget: *budget})
		if serr != nil {
			fatalf("%v", serr)
		}
		cells = res.Cells
		summary = &searchSummary{
			Budget:     *budget,
			GridPoints: prepared.NumPoints(),
			FullSims:   res.FullSims,
			Rounds:     res.Rounds,
			Best:       res.Best,
			Memo:       memo.Stats(),
		}
		if err := memo.Close(); err != nil {
			fatalf("close memo journal: %v", err)
		}
	} else if ses.CampaignEnabled() {
		prepared := dse.PrepareSweep(models, em.M, em.Cost.Config.NodeSize, sweepCfg)
		hash := resilience.ConfigHash("besst-dse", *samples, *steps, *mc, common.Seed)
		sweepCells, rep, err := resilience.SweepResumable(prepared, ses.Campaign(hash))
		if err != nil {
			fatalf("%v", err)
		}
		progress := cli.NewPrinter(os.Stderr)
		cli.ReportCampaign(progress, rep)
		if err := progress.Err(); err != nil {
			fatalf("writing progress: %v", err)
		}
		cells = sweepCells
	} else {
		cells = dse.OverheadSweep(models, em.M, em.Cost.Config.NodeSize, sweepCfg)
	}
	sweepDone()

	pruneDone := ses.Phase("prune-report")
	pruning := dse.PruneReport(models, campaign, *threshold)
	pruneDone()
	ranking := dse.RankFTLevels(cells, *epr, *ranks)

	if common.JSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{Cells: cells, Ranking: ranking, Pruning: pruning, Search: summary}); err != nil {
			fatalf("encode report: %v", err)
		}
	} else {
		if summary != nil {
			out.Printf("\nSurrogate-guided search: simulated %d of %d grid points in %d rounds (budget %.0f%%)\n",
				summary.FullSims, summary.GridPoints, summary.Rounds, summary.Budget*100)
			out.Printf("  best: %-8s epr=%d ranks=%d %.4gs\n",
				summary.Best.Scenario, summary.Best.EPR, summary.Best.Ranks, summary.Best.MeanSec)
			out.Printf("  memo: %d entries, hits=%d misses=%d\n",
				summary.Memo.Entries, summary.Memo.Hits, summary.Memo.Misses)
		}
		out.Println("\nOverhead prediction (percent of no-FT runtime at 64 ranks per epr):")
		for _, r := range []int{64, 216, 1000} {
			out.Println(dse.FormatOverheadTable(cells, r))
		}

		out.Printf("FT-level ranking at epr=%d, ranks=%d:\n", *epr, *ranks)
		for i, c := range ranking {
			out.Printf("  %d. %-8s %.4gs (%.0f%%)\n", i+1, c.Scenario, c.MeanSec, c.OverheadPct)
		}

		out.Printf("\nPruning report (|divergence| > %.0f%%):\n", *threshold)
		flagged := 0
		for _, d := range pruning {
			if !d.Flagged {
				continue
			}
			flagged++
			out.Printf("  %-18s epr=%-3d ranks=%-5d measured %.4gs predicted %.4gs (%+.1f%%)\n    -> %s\n",
				d.Op, d.EPR, d.Ranks, d.MeasuredSec, d.PredictedSec, d.PercentError, d.Advice)
		}
		if flagged == 0 {
			out.Println("  no design-space regions flagged; models cover the grid")
		}
	}
	if err := ses.Close(); err != nil {
		fatalf("%v", err)
	}
	if err := out.Err(); err != nil {
		fatalf("writing output: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "besst-dse: "+format+"\n", args...)
	os.Exit(1)
}
